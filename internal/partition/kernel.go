package partition

import (
	"context"
	"math"
	"sync"

	"partitionshare/internal/obs"
)

// Observability names for the DP core, package-prefixed dotted.snake per
// the obsname registry convention. Each metric/span name is declared
// exactly once and shared by every solve path.
const (
	spanSolve   = "partition.solve"
	spanDPLayer = "partition.dp_layer"

	mSolves           = "partition.solves"
	mDPCells          = "partition.dp_cells"
	mPathRefineSolves = "partition.path_refine_solves"
	mRefineBandCells  = "partition.refine_band_cells"
	mRefineFallbacks  = "partition.refine_fallbacks"
	mPathDCLayers     = "partition.path_dc_layers"
	mPathExactLayers  = "partition.path_exact_layers"
	mPoolWorkerLayers = "partition.pool_worker_layers"
	mPoolWorkerCells  = "partition.pool_worker_cells"
)

// This file holds the DP core shared by Optimize, OptimizeParallel, and
// (through Optimize) OptimizeWithBaseline and the other constrained
// optimizers. The kernel computes one layer of the Eq. 16 recurrence in
// gather form — next[t] = min over u of combine(dp[t−u], cost(u)) — which
// keeps the running minimum in a register instead of read-modify-writing
// next[t] per candidate as the scatter form does.
//
// Three observations make the layer loop tight without changing a single
// output bit relative to the original scatter implementation:
//
//  1. Specialization: the Sum/Minimax branch is hoisted out of the inner
//     loop into dedicated kernels, chosen once per solve.
//
//  2. Feasible-interval trimming: each program's allocation range [lo, hi]
//     is a contiguous interval, so the set of reachable unit totals after p
//     layers is the interval [Σlo, min(C, Σhi)] and every cell inside it is
//     finite. The kernel iterates only over candidate predecessors inside
//     the previous layer's interval, which both skips infeasible work (the
//     scatter form's dp[k]==inf scan) and — when costs are well-scaled —
//     licenses an inner loop with no feasibility check at all.
//
//  3. Reversed cost windows: candidates for cell t are dp[j] (ascending j)
//     paired with cost(t−j) (descending unit). Storing the layer costs
//     reversed makes both streams ascend, so the inner loop is two
//     contiguous reads, an add (or max), and a register compare.
//
// Values-only rows + lazy reconstruction: the kernels compute DP values
// only — no per-cell choice table. Every layer's full row is retained in
// the scratch arena, and after the last layer the allocation is rebuilt by
// rescanning, at each of the n on-path cells, the leftmost strict-improve
// argmin over the cell's full candidate window (reconstructAlloc). The
// scatter reference visits predecessors k ascending with a strict compare,
// so ties keep the smallest k (largest unit count u); the rescan replays
// exactly that order and compare over exactly the reference's candidate
// values, so the allocation — including tie-breaking — is bit-identical to
// ReferenceOptimize *regardless of how the layer values were computed*.
// That independence is what lets the structured solvers (structured.go,
// refine.go) schedule the min computations differently while keeping every
// output bit: they only ever have to reproduce the row values.

const inf = math.MaxFloat64

// costSafeLimit bounds the cumulative cost magnitude under which the
// unchecked kernels are provably exact: while every |cost| sum so far stays
// below it, no dp cell inside the feasible interval can reach
// math.MaxFloat64 (the infeasibility sentinel) or overflow. Beyond it — or
// when a custom Cost function returns NaN or ±Inf — the solve falls back to
// the checked kernels, which skip sentinel cells exactly like the original
// implementation.
const costSafeLimit = 8.9e307

// layerSpec describes one DP layer for the kernels and the worker pool.
type layerSpec struct {
	dp, next []float64
	costsRev []float64 // costsRev[i] = cost(hi − i)
	lo, hi   int
	// prevLo, prevHi delimit the previous layer's feasible interval.
	prevLo, prevHi int
	minimax        bool
	checked        bool
	blocked        bool
}

// layerMeta records, per solved layer, the geometry reconstructAlloc needs
// to replay the layer's candidate windows.
type layerMeta struct {
	lo, hi         int
	prevLo, prevHi int
}

// runLayerRange fills next[tLo..tHi] with the layer's DP values.
func runLayerRange(sp *layerSpec, tLo, tHi int) {
	if sp.blocked && !sp.checked && !sp.minimax {
		runLayerRangeBlockedSum(sp, tLo, tHi)
		return
	}
	newLo := sp.prevLo + sp.lo
	newHi := sp.prevHi + sp.hi
	dp, next := sp.dp, sp.next
	for t := tLo; t <= tHi; t++ {
		if t < newLo || t > newHi {
			next[t] = inf
			continue
		}
		j0, j1 := sp.prevLo, sp.prevHi
		if v := t - sp.hi; v > j0 {
			j0 = v
		}
		if v := t - sp.lo; v < j1 {
			j1 = v
		}
		switch {
		case sp.checked && sp.minimax:
			next[t] = cellMinimaxCheckedVal(dp, sp.costsRev, sp.hi-t, j0, j1)
		case sp.checked:
			next[t] = cellSumCheckedVal(dp, sp.costsRev, sp.hi-t, j0, j1)
		case sp.minimax:
			next[t] = cellMinimaxVal(dp, sp.costsRev, sp.hi-t, j0, j1)
		default:
			next[t] = cellSumVal(dp, sp.costsRev, sp.hi-t, j0, j1)
		}
	}
}

// Blocked tile sizes for the large-window Sum kernel: one j-tile of dp plus
// the matching slice of the reversed cost row stay L1-resident while the
// t-tile reuses them, instead of streaming the full O(C) window through the
// cache once per cell.
const (
	blockedTileT = 256
	blockedTileJ = 3072
	// blockedMinWindow gates the tiled layout to layers whose candidate
	// windows are large enough to thrash L1; below it the flat scan's
	// simplicity wins.
	blockedMinWindow = 2 * blockedTileJ
)

// runLayerRangeBlockedSum is the cache-blocked form of the Sum layer loop.
// For each (t, j) tile it merges tile minima into next[t] with the same
// strict compare, visiting j strictly ascending across tiles — the running
// minimum evolves through the identical sequence of float compares as the
// flat scan, so every value bit matches.
func runLayerRangeBlockedSum(sp *layerSpec, tLo, tHi int) {
	newLo := sp.prevLo + sp.lo
	newHi := sp.prevHi + sp.hi
	dp, next := sp.dp, sp.next
	for t := tLo; t <= tHi; t++ {
		next[t] = inf
	}
	a, b := tLo, tHi
	if a < newLo {
		a = newLo
	}
	if b > newHi {
		b = newHi
	}
	for tb := a; tb <= b; tb += blockedTileT {
		te := tb + blockedTileT - 1
		if te > b {
			te = b
		}
		jMin := sp.prevLo
		if v := tb - sp.hi; v > jMin {
			jMin = v
		}
		jMax := sp.prevHi
		if v := te - sp.lo; v < jMax {
			jMax = v
		}
		for jb := jMin; jb <= jMax; jb += blockedTileJ {
			je := jb + blockedTileJ - 1
			if je > jMax {
				je = jMax
			}
			for t := tb; t <= te; t++ {
				j0, j1 := jb, je
				if v := t - sp.hi; v > j0 {
					j0 = v
				}
				if v := t - sp.lo; v < j1 {
					j1 = v
				}
				if j0 > j1 {
					continue
				}
				off := sp.hi - t
				dpw := dp[j0 : j1+1]
				cw := sp.costsRev[off+j0 : off+j1+1 : off+j1+1]
				cw = cw[:len(dpw)]
				best := next[t]
				for i, v := range dpw {
					if cand := v + cw[i]; cand < best {
						best = cand
					}
				}
				next[t] = best
			}
		}
	}
}

// cellSumVal scans candidates for one cell with no feasibility check: every
// dp[j] in [j0, j1] is finite by the interval invariant, and cost magnitudes
// are bounded, so the first candidate always improves on inf.
func cellSumVal(dp, costsRev []float64, off, j0, j1 int) float64 {
	dpw := dp[j0 : j1+1]
	cw := costsRev[off+j0 : off+j1+1 : off+j1+1]
	cw = cw[:len(dpw)]
	// Two independent accumulators break the serial min dependency chain;
	// float64 min is exact (no rounding), so any accumulation order gives
	// the bit-identical value.
	best, best2 := inf, inf
	i := 0
	for ; i+1 < len(dpw); i += 2 {
		if cand := dpw[i] + cw[i]; cand < best {
			best = cand
		}
		if cand := dpw[i+1] + cw[i+1]; cand < best2 {
			best2 = cand
		}
	}
	if i < len(dpw) {
		if cand := dpw[i] + cw[i]; cand < best {
			best = cand
		}
	}
	if best2 < best {
		best = best2
	}
	return best
}

// cellSum is cellSumVal plus the leftmost strict-improve argmin, used by
// the divide-and-conquer scheduler, which needs the argmin to split its
// column windows.
func cellSum(dp, costsRev []float64, off, j0, j1 int) (float64, int) {
	dpw := dp[j0 : j1+1]
	cw := costsRev[off+j0 : off+j1+1 : off+j1+1]
	cw = cw[:len(dpw)]
	best := inf
	bestI := -1
	for i, v := range dpw {
		if cand := v + cw[i]; cand < best {
			best = cand
			bestI = i
		}
	}
	if bestI < 0 {
		return inf, -1
	}
	return best, j0 + bestI
}

// cellMinimaxVal is cellSumVal with the max combine. math.Max is used (not
// a hand-rolled compare) so NaN and signed-zero handling match the original.
func cellMinimaxVal(dp, costsRev []float64, off, j0, j1 int) float64 {
	dpw := dp[j0 : j1+1]
	cw := costsRev[off+j0 : off+j1+1 : off+j1+1]
	cw = cw[:len(dpw)]
	best := inf
	for i, v := range dpw {
		if cand := math.Max(v, cw[i]); cand < best {
			best = cand
		}
	}
	return best
}

// cellSumCheckedVal is the exact-semantics fallback: it skips sentinel
// cells the way the scatter implementation skipped dp[k] == inf, which
// matters only when custom costs are non-finite or astronomically large.
func cellSumCheckedVal(dp, costsRev []float64, off, j0, j1 int) float64 {
	best := inf
	for j := j0; j <= j1; j++ {
		prev := dp[j]
		if prev == inf {
			continue
		}
		if cand := prev + costsRev[off+j]; cand < best {
			best = cand
		}
	}
	return best
}

func cellMinimaxCheckedVal(dp, costsRev []float64, off, j0, j1 int) float64 {
	best := inf
	for j := j0; j <= j1; j++ {
		prev := dp[j]
		if prev == inf {
			continue
		}
		if cand := math.Max(prev, costsRev[off+j]); cand < best {
			best = cand
		}
	}
	return best
}

// scratch is a reusable arena for one solve: the full stack of DP rows
// (base row plus one per layer, backing lazy reconstruction), the reversed
// per-layer cost window, per-layer window geometry, and — for the
// refinement solver — a materialized cost table. Pooling it makes repeated
// solves allocation-free in the DP hot path, which is what the experiment
// sweep (thousands of solves per run) leans on.
type scratch struct {
	buf      []float64   // (n+1)×(C+1) backing store for rows
	rows     [][]float64 // rows[0] = base row; rows[p+1] = dp after layer p
	costsRev []float64
	metas    []layerMeta
	// refine-only buffers, grown on demand (refine.go). The level tables
	// ping-pong between lvlBuf0/lvlBuf1 because one level's bounds are
	// still being read (banding) while the next level's are written. None
	// of them is cleared on reuse: every cell the refinement reads is
	// written first, by construction.
	costBuf  []float64
	lvlBuf0  []float64
	lvlBuf1  []float64
	upBuf    []float64
	cminBuf  []float64
	sweepBuf []float64
	chBuf    []int32
	dqBuf    []int32
	maskBuf  []bool
}

// maxPooledCells caps the arena size kept alive by the pool: large-C solves
// (satellite audit: C=65536 and beyond) allocate their rows fresh and
// release them to the GC instead of pinning tens of megabytes per P.
const maxPooledCells = 1 << 22

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

func getScratch(n, C int) *scratch {
	s := scratchPool.Get().(*scratch)
	need := (n + 1) * (C + 1)
	if cap(s.buf) < need {
		s.buf = make([]float64, need)
	} else {
		s.buf = s.buf[:need]
	}
	if cap(s.rows) < n+1 {
		s.rows = make([][]float64, n+1)
	} else {
		s.rows = s.rows[:n+1]
	}
	for i := 0; i <= n; i++ {
		s.rows[i] = s.buf[i*(C+1) : (i+1)*(C+1)]
	}
	s.costsRev = growFloats(s.costsRev, C+1)
	if cap(s.metas) < n {
		s.metas = make([]layerMeta, n)
	} else {
		s.metas = s.metas[:n]
	}
	return s
}

func putScratch(s *scratch) {
	if len(s.buf) > maxPooledCells || len(s.costBuf) > maxPooledCells ||
		len(s.cminBuf) > maxPooledCells || len(s.lvlBuf0) > maxPooledCells {
		return
	}
	scratchPool.Put(s)
}

func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// reconstructAlloc rebuilds the optimal allocation from the retained DP
// rows. At each on-path cell it replays the layer's candidate scan — j
// ascending, strict improvement, skipping sentinel cells — over the same
// candidate values the layer kernels saw, so the chosen predecessor (and
// with it the whole allocation, ties included) is exactly the one the
// scatter reference records in its choice table. Costs are re-evaluated
// through pr.cost, which is why Problem.Cost must be deterministic.
func reconstructAlloc(pr *Problem, s *scratch, C int, minimax bool) (Allocation, error) {
	n := len(s.metas)
	alloc := make(Allocation, n)
	k := C
	for p := n - 1; p >= 0; p-- {
		m := s.metas[p]
		prev := s.rows[p]
		j0, j1 := m.prevLo, m.prevHi
		if v := k - m.hi; v > j0 {
			j0 = v
		}
		if v := k - m.lo; v < j1 {
			j1 = v
		}
		best := inf
		bestJ := -1
		for j := j0; j <= j1; j++ {
			pv := prev[j]
			if pv == inf {
				continue
			}
			c := pr.cost(p, k-j)
			var cand float64
			if minimax {
				cand = math.Max(pv, c)
			} else {
				cand = pv + c
			}
			if cand < best {
				best = cand
				bestJ = j
			}
		}
		if bestJ < 0 {
			return nil, errNoFeasible()
		}
		alloc[p] = k - bestJ
		k = bestJ
	}
	if k != 0 {
		return nil, errLeftover(k)
	}
	return alloc, nil
}

// solve is the shared core of Optimize and OptimizeParallel. A nil ctx
// (the serial Optimize path) skips cancellation checks entirely;
// otherwise ctx is polled between DP layers, the natural preemption
// point: each layer is a bounded burst, and aborting between layers
// leaves no partial state beyond the pooled scratch, which is returned
// intact.
//
// The solver ladder (DESIGN.md §13) runs top to bottom, every rung gated
// by an exactness certificate and falling through on failure:
//
//	refine  — whole-solve coarse-to-fine bound pruning (refine.go)
//	dc      — per-layer divide and conquer + SMAWK on certified-convex
//	          cost rows (structured.go)
//	exact   — the gather kernel above, blocked at large windows
func solve(ctx context.Context, pr *Problem, workers int) (Solution, error) {
	if err := pr.validate(); err != nil {
		return Solution{}, err
	}
	n, C := len(pr.Curves), pr.Units
	minimax := pr.Combine == Minimax
	mode := pr.Solver

	// Trace only the cancellable (ctx != nil) path: the serial Optimize
	// calls in the sweep's inner loop pass nil and stay instrumentation-
	// free — their timing is the ObsOverhead gate's subject — while the
	// coarse parallel solves record a span with per-layer children.
	var path solvePath
	if ctx != nil {
		var ps *obs.TraceSpan
		ctx, ps = obs.StartTraceSpan(ctx, spanSolve, "dp")
		defer func() {
			ps.Arg("programs", int64(n)).Arg("units", int64(C)).
				Arg("dc_layers", int64(path.dcLayers)).
				Arg("refine", boolArg(path.refine)).End()
		}()
	}

	s := getScratch(n, C)
	defer putScratch(s)
	base := s.rows[0]
	for k := range base {
		base[k] = inf
	}
	// The empty-set objective: 0 for Sum, -Inf for Minimax (the identity
	// of max), so the first program's cost passes through unchanged even
	// if negative.
	if minimax {
		base[0] = math.Inf(-1)
	} else {
		base[0] = 0
	}

	// Rung 1: whole-solve coarse-to-fine refinement.
	if mode == SolverRefine || (mode == SolverAuto && C >= refineAutoMinUnits) {
		ok, err := refineSolve(ctx, pr, s, &path)
		if err != nil {
			return Solution{}, err
		}
		if ok {
			return finishSolve(pr, s, C, minimax, &path)
		}
	}

	// Rungs 2–3: per-layer d&c/SMAWK on certified layers, exact kernel
	// otherwise.
	var pool *dpPool
	if workers > 1 {
		pool = newDPPool(workers, C)
		defer pool.close()
	}

	tryDC := !minimax && (mode == SolverDC || mode == SolverAuto || mode == SolverRefine)
	spec := layerSpec{minimax: minimax}
	prevLo, prevHi := 0, 0
	costBound := 0.0
	for p := 0; p < n; p++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return Solution{}, ctx.Err()
			default:
			}
		}
		lo, hi := pr.bounds(p)
		costsRev := s.costsRev[:hi-lo+1]
		layerMax := 0.0
		cert := newLayerCert(tryDC)
		for u := lo; u <= hi; u++ {
			c := pr.cost(p, u)
			costsRev[hi-lo-(u-lo)] = c
			if a := math.Abs(c); !(a <= layerMax) {
				// NaN falls through to +Inf here, forcing checked mode.
				if a >= 0 {
					layerMax = a
				} else {
					layerMax = math.Inf(1)
				}
			}
			cert.observe(c)
		}
		if minimax {
			costBound = math.Max(costBound, layerMax)
		} else {
			costBound += layerMax
		}
		spec.dp, spec.next = s.rows[p], s.rows[p+1]
		spec.costsRev = costsRev
		spec.lo, spec.hi = lo, hi
		spec.prevLo, spec.prevHi = prevLo, prevHi
		spec.checked = spec.checked || !(costBound < costSafeLimit)
		spec.blocked = !spec.minimax && !spec.checked &&
			spec.prevHi-spec.prevLo+1 >= blockedMinWindow
		useDC := tryDC && !spec.checked && cert.certified() &&
			(mode == SolverDC || hi-lo+1 >= dcAutoMinWindow)
		switch {
		case useDC:
			_, ls := obs.StartTraceSpan(ctx, spanDPLayer, "dp")
			dcLayer(&spec, &path)
			ls.Arg("layer", int64(p)).Arg("dc", 1).End()
			path.dcLayers++
		case pool != nil:
			_, ls := obs.StartTraceSpan(ctx, spanDPLayer, "dp")
			pool.runLayer(&spec)
			ls.Arg("layer", int64(p)).End()
			path.exactLayers++
		default:
			runLayerRange(&spec, 0, C)
			path.exactLayers++
		}
		s.metas[p] = layerMeta{lo: lo, hi: hi, prevLo: prevLo, prevHi: prevHi}
		path.cells += int64(C + 1)
		prevLo += lo
		if prevHi += hi; prevHi > C {
			prevHi = C
		}
	}

	return finishSolve(pr, s, C, minimax, &path)
}

// finishSolve records the solve's observability batch, reconstructs the
// allocation from the retained rows, and assembles the Solution.
func finishSolve(pr *Problem, s *scratch, C int, minimax bool, path *solvePath) (Solution, error) {
	n := len(s.metas)
	// One batched observation per solve: with the registry disabled this
	// is a single nil check, and even enabled it is a handful of atomic
	// adds for the whole solve — the sweep's hot path stays untouched.
	if reg := obs.Enabled(); reg != nil {
		reg.Counter(mSolves).Inc()
		reg.Counter(mDPCells).Add(path.cells)
		if path.refine {
			reg.Counter(mPathRefineSolves).Inc()
			reg.Counter(mRefineBandCells).Add(path.bandCells)
		}
		if path.refineFallback {
			reg.Counter(mRefineFallbacks).Inc()
		}
		if path.dcLayers > 0 {
			reg.Counter(mPathDCLayers).Add(int64(path.dcLayers))
		}
		if path.exactLayers > 0 {
			reg.Counter(mPathExactLayers).Add(int64(path.exactLayers))
		}
	}

	final := s.rows[n]
	if final[C] == inf {
		return Solution{}, errNoFeasible()
	}
	alloc, err := reconstructAlloc(pr, s, C, minimax)
	if err != nil {
		return Solution{}, err
	}
	sol := pr.solution(alloc, final[C])
	sol.SolverPath = path.String()
	return sol, nil
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
