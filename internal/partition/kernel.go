package partition

import (
	"context"
	"math"
	"sync"

	"partitionshare/internal/obs"
)

// This file holds the single DP kernel shared by Optimize, OptimizeParallel,
// and (through Optimize) OptimizeWithBaseline and the other constrained
// optimizers. The kernel computes one layer of the Eq. 16 recurrence in
// gather form — next[t] = min over u of combine(dp[t−u], cost(u)) — which
// keeps the running minimum in a register instead of read-modify-writing
// next[t] per candidate as the scatter form does.
//
// Three observations make the layer loop tight without changing a single
// output bit relative to the original scatter implementation:
//
//  1. Specialization: the Sum/Minimax branch is hoisted out of the inner
//     loop into two dedicated kernels, chosen once per solve.
//
//  2. Feasible-interval trimming: each program's allocation range [lo, hi]
//     is a contiguous interval, so the set of reachable unit totals after p
//     layers is the interval [Σlo, min(C, Σhi)] and every cell inside it is
//     finite. The kernel iterates only over candidate predecessors inside
//     the previous layer's interval, which both skips infeasible work (the
//     scatter form's dp[k]==inf scan) and — when costs are well-scaled —
//     licenses an inner loop with no feasibility check at all.
//
//  3. Reversed cost windows: candidates for cell t are dp[j] (ascending j)
//     paired with cost(t−j) (descending unit). Storing the layer costs
//     reversed makes both streams ascend, so the inner loop is two
//     contiguous reads, an add (or max), and a register compare.
//
// Bit-exactness: for a fixed t the scatter form visits predecessors k
// ascending and takes strict improvements, so ties keep the smallest k
// (largest unit count u). The gather kernels visit j (=k) ascending with the
// same strict compare and the same float operation dp[j]+cost (or
// math.Max), reproducing both the dp values and the choice table exactly.

const inf = math.MaxFloat64

// costSafeLimit bounds the cumulative cost magnitude under which the
// unchecked kernels are provably exact: while every |cost| sum so far stays
// below it, no dp cell inside the feasible interval can reach
// math.MaxFloat64 (the infeasibility sentinel) or overflow. Beyond it — or
// when a custom Cost function returns NaN or ±Inf — the solve falls back to
// the checked kernels, which skip sentinel cells exactly like the original
// implementation.
const costSafeLimit = 8.9e307

// layerSpec describes one DP layer for the kernels and the worker pool.
type layerSpec struct {
	dp, next []float64
	costsRev []float64 // costsRev[i] = cost(hi − i)
	ch       []int32   // this layer's choice row, len C+1
	lo, hi   int
	// prevLo, prevHi delimit the previous layer's feasible interval.
	prevLo, prevHi int
	minimax        bool
	checked        bool
}

// runLayerRange fills next[tLo..tHi] and the matching choice cells.
func runLayerRange(sp *layerSpec, tLo, tHi int) {
	newLo := sp.prevLo + sp.lo
	newHi := sp.prevHi + sp.hi
	dp, next, ch := sp.dp, sp.next, sp.ch
	for t := tLo; t <= tHi; t++ {
		if t < newLo || t > newHi {
			next[t] = inf
			ch[t] = 0
			continue
		}
		j0, j1 := sp.prevLo, sp.prevHi
		if v := t - sp.hi; v > j0 {
			j0 = v
		}
		if v := t - sp.lo; v < j1 {
			j1 = v
		}
		var best float64
		var bestJ int
		switch {
		case sp.checked && sp.minimax:
			best, bestJ = cellMinimaxChecked(dp, sp.costsRev, sp.hi-t, j0, j1)
		case sp.checked:
			best, bestJ = cellSumChecked(dp, sp.costsRev, sp.hi-t, j0, j1)
		case sp.minimax:
			best, bestJ = cellMinimax(dp, sp.costsRev, sp.hi-t, j0, j1)
		default:
			best, bestJ = cellSum(dp, sp.costsRev, sp.hi-t, j0, j1)
		}
		next[t] = best
		if bestJ < 0 {
			ch[t] = 0
		} else {
			ch[t] = int32(t - bestJ)
		}
	}
}

// cellSum scans candidates for one cell with no feasibility check: every
// dp[j] in [j0, j1] is finite by the interval invariant, and cost magnitudes
// are bounded, so the first candidate always improves on inf.
func cellSum(dp, costsRev []float64, off, j0, j1 int) (float64, int) {
	dpw := dp[j0 : j1+1]
	cw := costsRev[off+j0 : off+j1+1 : off+j1+1]
	cw = cw[:len(dpw)]
	best := inf
	bestI := -1
	for i, v := range dpw {
		if cand := v + cw[i]; cand < best {
			best = cand
			bestI = i
		}
	}
	if bestI < 0 {
		return inf, -1
	}
	return best, j0 + bestI
}

// cellMinimax is cellSum with the max combine. math.Max is used (not a
// hand-rolled compare) so NaN and signed-zero handling match the original.
func cellMinimax(dp, costsRev []float64, off, j0, j1 int) (float64, int) {
	dpw := dp[j0 : j1+1]
	cw := costsRev[off+j0 : off+j1+1 : off+j1+1]
	cw = cw[:len(dpw)]
	best := inf
	bestI := -1
	for i, v := range dpw {
		if cand := math.Max(v, cw[i]); cand < best {
			best = cand
			bestI = i
		}
	}
	if bestI < 0 {
		return inf, -1
	}
	return best, j0 + bestI
}

// cellSumChecked is the exact-semantics fallback: it skips sentinel cells
// the way the scatter implementation skipped dp[k] == inf, which matters
// only when custom costs are non-finite or astronomically large.
func cellSumChecked(dp, costsRev []float64, off, j0, j1 int) (float64, int) {
	best := inf
	bestJ := -1
	for j := j0; j <= j1; j++ {
		prev := dp[j]
		if prev == inf {
			continue
		}
		if cand := prev + costsRev[off+j]; cand < best {
			best = cand
			bestJ = j
		}
	}
	return best, bestJ
}

func cellMinimaxChecked(dp, costsRev []float64, off, j0, j1 int) (float64, int) {
	best := inf
	bestJ := -1
	for j := j0; j <= j1; j++ {
		prev := dp[j]
		if prev == inf {
			continue
		}
		if cand := math.Max(prev, costsRev[off+j]); cand < best {
			best = cand
			bestJ = j
		}
	}
	return best, bestJ
}

// scratch is a reusable arena for one solve: the two DP rows, the reversed
// per-layer cost window, and the flattened choice table. Pooling it makes
// repeated solves allocation-free in the DP hot path, which is what the
// experiment sweep (thousands of solves per run) leans on.
type scratch struct {
	dp, next []float64
	costsRev []float64
	choice   []int32 // n rows of C+1, flattened
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

func getScratch(n, C int) *scratch {
	s := scratchPool.Get().(*scratch)
	s.dp = growFloats(s.dp, C+1)
	s.next = growFloats(s.next, C+1)
	s.costsRev = growFloats(s.costsRev, C+1)
	if need := n * (C + 1); cap(s.choice) < need {
		s.choice = make([]int32, need)
	} else {
		s.choice = s.choice[:need]
	}
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// solve is the shared core of Optimize and OptimizeParallel. A nil ctx
// (the serial Optimize path) skips cancellation checks entirely;
// otherwise ctx is polled between DP layers, the natural preemption
// point: each layer is a bounded O(C²) burst, and aborting between layers
// leaves no partial state beyond the pooled scratch, which is returned
// intact.
func solve(ctx context.Context, pr *Problem, workers int) (Solution, error) {
	if err := pr.validate(); err != nil {
		return Solution{}, err
	}
	n, C := len(pr.Curves), pr.Units

	// Trace only the cancellable (ctx != nil) path: the serial Optimize
	// calls in the sweep's inner loop pass nil and stay instrumentation-
	// free — their timing is the ObsOverhead gate's subject — while the
	// coarse parallel solves record a span with per-layer children.
	if ctx != nil {
		var ps *obs.TraceSpan
		ctx, ps = obs.StartTraceSpan(ctx, "partition.solve", "dp")
		defer ps.Arg("programs", int64(n)).Arg("units", int64(C)).End()
	}

	s := getScratch(n, C)
	defer putScratch(s)
	dp, next := s.dp, s.next
	for k := range dp {
		dp[k] = inf
	}
	minimax := pr.Combine == Minimax
	// The empty-set objective: 0 for Sum, -Inf for Minimax (the identity
	// of max), so the first program's cost passes through unchanged even
	// if negative.
	if minimax {
		dp[0] = math.Inf(-1)
	} else {
		dp[0] = 0
	}

	var pool *dpPool
	if workers > 1 {
		pool = newDPPool(workers, C)
		defer pool.close()
	}

	spec := layerSpec{minimax: minimax}
	prevLo, prevHi := 0, 0
	costBound := 0.0
	for p := 0; p < n; p++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return Solution{}, ctx.Err()
			default:
			}
		}
		lo, hi := pr.bounds(p)
		costsRev := s.costsRev[:hi-lo+1]
		layerMax := 0.0
		for u := lo; u <= hi; u++ {
			c := pr.cost(p, u)
			costsRev[hi-lo-(u-lo)] = c
			if a := math.Abs(c); !(a <= layerMax) {
				// NaN falls through to +Inf here, forcing checked mode.
				if a >= 0 {
					layerMax = a
				} else {
					layerMax = math.Inf(1)
				}
			}
		}
		if minimax {
			costBound = math.Max(costBound, layerMax)
		} else {
			costBound += layerMax
		}
		spec.dp, spec.next = dp, next
		spec.costsRev = costsRev
		spec.ch = s.choice[p*(C+1) : (p+1)*(C+1)]
		spec.lo, spec.hi = lo, hi
		spec.prevLo, spec.prevHi = prevLo, prevHi
		spec.checked = spec.checked || !(costBound < costSafeLimit)
		if pool != nil {
			_, ls := obs.StartTraceSpan(ctx, "dp.layer", "dp")
			pool.runLayer(&spec)
			ls.Arg("layer", int64(p)).End()
		} else {
			runLayerRange(&spec, 0, C)
		}
		dp, next = next, dp
		prevLo += lo
		if prevHi += hi; prevHi > C {
			prevHi = C
		}
	}

	// One batched observation per solve: with the registry disabled this
	// is a single nil check, and even enabled it is two atomic adds for
	// the whole O(P·C²) solve — the sweep's hot path stays untouched.
	if reg := obs.Enabled(); reg != nil {
		reg.Counter("partition_solves_total").Inc()
		reg.Counter("partition_dp_cells_total").Add(int64(n) * int64(C+1))
	}

	if dp[C] == inf {
		return Solution{}, errNoFeasible()
	}
	alloc := make(Allocation, n)
	k := C
	for p := n - 1; p >= 0; p-- {
		u := int(s.choice[p*(C+1)+k])
		alloc[p] = u
		k -= u
	}
	if k != 0 {
		return Solution{}, errLeftover(k)
	}
	return pr.solution(alloc, dp[C]), nil
}
