package partition

import "fmt"

// Solver selects the solving strategy for Optimize and OptimizeParallel.
// Every strategy returns bit-identical results — objective, allocation,
// and tie-breaking — to ReferenceOptimize; the choice only affects how
// the minima are computed (DESIGN.md §13). The zero value, SolverAuto,
// is the default for every existing caller.
type Solver int

const (
	// SolverAuto walks the solver ladder: coarse-to-fine refinement for
	// large eligible instances, divide-and-conquer/SMAWK on layers whose
	// cost rows pass the exact convexity certificate, and the blocked
	// exact gather kernel for everything else.
	SolverAuto Solver = iota
	// SolverExact forces the exact gather kernel on every layer — the
	// ladder's bottom rung, and the bit-exactness anchor the structured
	// rungs are tested against.
	SolverExact
	// SolverDC forces divide-and-conquer/SMAWK scheduling on every layer
	// that passes the convexity certificate, regardless of size
	// thresholds. Layers that fail the certificate still fall back to the
	// exact kernel — the certificate is a correctness gate, not a
	// heuristic.
	SolverDC
	// SolverRefine forces the coarse-to-fine refinement rung regardless
	// of the auto size threshold. Instances the rung cannot certify
	// (minimax or negative/non-finite costs, per-program bounds, tiny C)
	// fall through to the per-layer ladder.
	SolverRefine
)

func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverExact:
		return "exact"
	case SolverDC:
		return "dc"
	case SolverRefine:
		return "refine"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// ParseSolver converts a flag string to a Solver.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "auto", "":
		return SolverAuto, nil
	case "exact":
		return SolverExact, nil
	case "dc":
		return SolverDC, nil
	case "refine":
		return SolverRefine, nil
	}
	return SolverAuto, fmt.Errorf("partition: unknown solver %q (want auto, exact, dc, or refine)", s)
}

// dcAutoMinWindow gates the auto ladder's d&c rung to layers whose cost
// window is large enough for the O(W log W) schedule to beat the flat
// scan's locality.
const dcAutoMinWindow = 512

// solvePath accumulates which rungs of the ladder actually ran during one
// solve, for the Solution.SolverPath report and the obs counters.
type solvePath struct {
	refine         bool
	refineFallback bool
	dcLayers       int
	exactLayers    int
	smawkRows      int
	cells          int64 // DP cells computed
	bandCells      int64 // cells retained by refinement bands
}

// String renders the rung combination, e.g. "exact", "dc+exact",
// "refine", or "refine-fallback+dc+exact".
func (p *solvePath) String() string {
	if p.refine {
		return "refine"
	}
	out := ""
	if p.refineFallback {
		out = "refine-fallback+"
	}
	switch {
	case p.dcLayers > 0 && p.exactLayers > 0:
		return out + "dc+exact"
	case p.dcLayers > 0:
		return out + "dc"
	default:
		return out + "exact"
	}
}
