package partition

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"partitionshare/internal/mrc"
)

// assertBitExact fails unless two solutions agree bit for bit: objective
// and per-program miss ratios by Float64bits, allocation exactly.
func assertBitExact(t *testing.T, label string, got, want Solution) {
	t.Helper()
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Fatalf("%s: objective %v (bits %x) vs %v (bits %x)", label,
			got.Objective, math.Float64bits(got.Objective),
			want.Objective, math.Float64bits(want.Objective))
	}
	if len(got.Alloc) != len(want.Alloc) {
		t.Fatalf("%s: alloc length %d vs %d", label, len(got.Alloc), len(want.Alloc))
	}
	for i := range got.Alloc {
		if got.Alloc[i] != want.Alloc[i] {
			t.Fatalf("%s: alloc %v vs %v", label, got.Alloc, want.Alloc)
		}
	}
	for i := range got.MissRatios {
		if math.Float64bits(got.MissRatios[i]) != math.Float64bits(want.MissRatios[i]) {
			t.Fatalf("%s: miss ratio %d: %v vs %v", label, i, got.MissRatios[i], want.MissRatios[i])
		}
	}
}

// TestIncrementalBitExactVsReference pins the warm-start DP to the
// reference oracle bit for bit — objective, allocation (including
// tie-breaking), and per-program miss ratios — across growing prefixes.
func TestIncrementalBitExactVsReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 7))
	units := 32
	var curves []mrc.Curve
	inc := NewIncremental(units)
	for i := 0; i < 5; i++ {
		curves = append(curves, randCurve(rng, string(rune('a'+i)), units))
		if err := inc.Push(curves[i]); err != nil {
			t.Fatal(err)
		}
		got, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceOptimize(Problem{Curves: curves[:i+1], Units: units})
		if err != nil {
			t.Fatal(err)
		}
		assertBitExact(t, "prefix", got, want)
	}
}

// TestIncrementalTieBreaking constructs flat (plateau) curves where every
// split of the cache has the identical objective, so the allocation is
// decided purely by tie-breaking order — the case where a wrong scan
// direction diverges from the reference.
func TestIncrementalTieBreaking(t *testing.T) {
	units := 12
	flat := func(name string) mrc.Curve {
		mr := make([]float64, units+1)
		for i := range mr {
			mr[i] = 0.5
		}
		return mrc.Curve{Name: name, MR: mr, Accesses: 1000, AccessRate: 1}
	}
	curves := []mrc.Curve{flat("p"), flat("q"), flat("r")}
	inc := NewIncremental(units)
	for _, c := range curves {
		if err := inc.Push(c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceOptimize(Problem{Curves: curves, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, "plateau", got, want)
}

// TestRebaseChurnBitExact drives the warm start through a churn sequence
// — arrivals, departures, mid-list changes — and requires every
// rebased solve to match the reference oracle bit for bit while actually
// reusing shared prefixes.
func TestRebaseChurnBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 99))
	units := 24
	pool := make([]mrc.Curve, 6)
	for i := range pool {
		pool[i] = randCurve(rng, string(rune('a'+i)), units)
	}
	states := [][]int{
		{0, 1},          // initial pair
		{0, 1, 2},       // arrival: full prefix reuse
		{0, 1, 2, 3},    // arrival
		{0, 1, 3},       // mid-list departure: prefix reuse up to 2
		{0, 1, 3, 4, 5}, // arrivals on the shorter prefix
		{2, 4},          // near-total turnover
		{2, 4},          // no-op churn: everything reused
	}
	wantReused := []int{0, 2, 3, 2, 3, 0, 2}
	inc := NewIncremental(units)
	for si, idx := range states {
		curves := make([]mrc.Curve, len(idx))
		for i, j := range idx {
			curves[i] = pool[j]
		}
		reused, err := inc.Rebase(context.Background(), curves)
		if err != nil {
			t.Fatalf("state %d: Rebase: %v", si, err)
		}
		if reused != wantReused[si] {
			t.Fatalf("state %d: reused %d layers, want %d", si, reused, wantReused[si])
		}
		got, err := inc.Solve()
		if err != nil {
			t.Fatalf("state %d: Solve: %v", si, err)
		}
		want, err := ReferenceOptimize(Problem{Curves: curves, Units: units})
		if err != nil {
			t.Fatal(err)
		}
		assertBitExact(t, "churn state", got, want)
	}
}

// TestRebaseStaleFallsBackColdBitExact is the satellite's differential:
// a rejected warm start must surface ErrWarmStartStale via errors.Is,
// and the cold solve the caller falls back to must be bit-exact vs
// ReferenceOptimize.
func TestRebaseStaleFallsBackColdBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 2))
	units := 24
	good := []mrc.Curve{randCurve(rng, "a", units), randCurve(rng, "b", units)}
	inc := NewIncremental(units)
	if _, err := inc.Rebase(nil, good); err != nil {
		t.Fatal(err)
	}

	// A target list with an invalid curve rejects the warm start.
	bad := []mrc.Curve{good[0], {Name: "broken"}}
	_, err := inc.Rebase(nil, bad)
	if !errors.Is(err, ErrWarmStartStale) {
		t.Fatalf("Rebase with invalid curve = %v, want ErrWarmStartStale", err)
	}
	if inc.Len() != 0 {
		t.Fatalf("failed Rebase left %d layers; want empty state", inc.Len())
	}

	// The fallback path: cold solve of the group the caller actually
	// wanted, bit-exact vs the oracle.
	target := []mrc.Curve{good[0], randCurve(rng, "c", units)}
	cold, err := Optimize(Problem{Curves: target, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceOptimize(Problem{Curves: target, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, "cold fallback", cold, want)

	// And the optimizer recovers: a fresh Rebase after the failure works.
	if _, err := inc.Rebase(nil, target); err != nil {
		t.Fatalf("Rebase after failure: %v", err)
	}
	warm, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, "recovered warm", warm, want)
}

// TestRebaseCancelledContext: a cancelled deadline rejects the warm
// start with the stale sentinel (the service maps this to a cold solve
// or a degraded response).
func TestRebaseCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	units := 16
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inc := NewIncremental(units)
	_, err := inc.Rebase(ctx, []mrc.Curve{randCurve(rng, "a", units)})
	if !errors.Is(err, ErrWarmStartStale) {
		t.Fatalf("cancelled Rebase = %v, want ErrWarmStartStale", err)
	}
}

// TestSolveLeftoverWrapsStale corrupts the cached choice table to force
// the reconstruction-leftover path and asserts it carries the sentinel.
func TestSolveLeftoverWrapsStale(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	units := 8
	inc := NewIncremental(units)
	if err := inc.Push(randCurve(rng, "a", units)); err != nil {
		t.Fatal(err)
	}
	if err := inc.Push(randCurve(rng, "b", units)); err != nil {
		t.Fatal(err)
	}
	// Force the reconstruction to leave units unassigned: the last layer
	// claims 0 units and the first layer's choice row under-allocates.
	inc.layers[1].choice[units] = 0
	inc.layers[0].choice[units] = int32(units - 1)
	if _, err := inc.Solve(); !errors.Is(err, ErrWarmStartStale) {
		t.Fatalf("corrupted Solve = %v, want ErrWarmStartStale", err)
	}
}
