package partition

import (
	"fmt"
	"math"
)

// ReferenceOptimize is the original scatter-form DP, kept verbatim as the
// oracle for the pooled kernel: differential tests assert that Optimize and
// OptimizeParallel reproduce its objective, allocation, and tie-breaking
// bit for bit, and the paired benchmarks in bench_test.go measure the
// kernel against it. It allocates all working state per call.
func ReferenceOptimize(pr Problem) (Solution, error) {
	if err := pr.validate(); err != nil {
		return Solution{}, err
	}
	n, C := len(pr.Curves), pr.Units

	const inf = math.MaxFloat64
	// dp[k]: best objective for the programs seen so far using exactly k
	// units. choice[p][k]: units given to program p in that optimum.
	dp := make([]float64, C+1)
	next := make([]float64, C+1)
	choice := make([][]int32, n)

	for k := range dp {
		dp[k] = inf
	}
	// The empty-set objective: 0 for Sum, -Inf for Minimax (the identity
	// of max), so the first program's cost passes through unchanged even
	// if negative.
	if pr.Combine == Minimax {
		dp[0] = math.Inf(-1)
	} else {
		dp[0] = 0
	}

	for p := 0; p < n; p++ {
		choice[p] = make([]int32, C+1)
		lo, hi := pr.bounds(p)
		costs := make([]float64, hi-lo+1)
		for u := lo; u <= hi; u++ {
			costs[u-lo] = pr.cost(p, u)
		}
		for k := range next {
			next[k] = inf
		}
		for k := 0; k <= C; k++ {
			if dp[k] == inf {
				continue
			}
			for u := lo; u <= hi && k+u <= C; u++ {
				var cand float64
				if pr.Combine == Minimax {
					cand = math.Max(dp[k], costs[u-lo])
				} else {
					cand = dp[k] + costs[u-lo]
				}
				if cand < next[k+u] {
					next[k+u] = cand
					choice[p][k+u] = int32(u)
				}
			}
		}
		dp, next = next, dp
	}

	if dp[C] == inf {
		return Solution{}, fmt.Errorf("partition: no feasible allocation (internal)")
	}
	alloc := make(Allocation, n)
	k := C
	for p := n - 1; p >= 0; p-- {
		u := int(choice[p][k])
		alloc[p] = u
		k -= u
	}
	if k != 0 {
		return Solution{}, fmt.Errorf("partition: reconstruction leftover %d units (internal)", k)
	}
	return pr.solution(alloc, dp[C]), nil
}
