package partition

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"partitionshare/internal/mrc"
)

// randProblem builds a randomized small instance exercising every solver
// feature: non-convex curves, both combine rules, custom (possibly
// negative) costs, and random feasible MinAlloc/MaxAlloc bounds.
func randDiffProblem(rng *rand.Rand) Problem {
	units := rng.IntN(14) + 2
	n := rng.IntN(4) + 1
	curves := make([]mrc.Curve, n)
	for p := range curves {
		curves[p] = randCurve(rng, "p", units)
	}
	pr := Problem{Curves: curves, Units: units}
	if rng.Float64() < 0.5 {
		pr.Combine = Minimax
	}
	if rng.Float64() < 0.4 {
		// Custom non-convex cost with negative values and plateaus.
		seed := rng.Int64()
		pr.Cost = func(p, u int) float64 {
			x := uint64(seed) ^ uint64(p*2654435761) ^ uint64(u*40503)
			x ^= x >> 13
			x *= 0x9e3779b97f4a7c15
			x ^= x >> 29
			return float64(int64(x%2001)-1000) / 97
		}
	}
	if rng.Float64() < 0.4 {
		lo := make([]int, n)
		left := units
		for p := range lo {
			lo[p] = rng.IntN(left/n + 1)
			left -= lo[p]
		}
		pr.MinAlloc = lo
	}
	if rng.Float64() < 0.4 {
		hi := make([]int, n)
		need := units
		for p := range hi {
			lo := 0
			if pr.MinAlloc != nil {
				lo = pr.MinAlloc[p]
			}
			hi[p] = lo + rng.IntN(units-lo+1)
			need -= hi[p]
		}
		if need > 0 {
			hi[rng.IntN(n)] += need // keep the sum of upper bounds feasible
		}
		pr.MaxAlloc = hi
	}
	return pr
}

// TestOptimizeBitExactWithReference asserts the pooled gather kernel
// reproduces the original scatter implementation exactly: same objective
// bits, same allocation (tie-breaking included), on randomized instances.
func TestOptimizeBitExactWithReference(t *testing.T) {
	for seed := uint64(1); seed <= 400; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		pr := randDiffProblem(rng)
		want, errW := ReferenceOptimize(pr)
		got, errG := Optimize(pr)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: reference err %v, optimize err %v", seed, errW, errG)
		}
		if errW != nil {
			continue
		}
		if got.Objective != want.Objective {
			t.Fatalf("seed %d: objective %v != reference %v", seed, got.Objective, want.Objective)
		}
		if !reflect.DeepEqual(got.Alloc, want.Alloc) {
			t.Fatalf("seed %d: alloc %v != reference %v", seed, got.Alloc, want.Alloc)
		}
	}
}

// TestOptimizeParallelBitExactAllWorkerCounts asserts OptimizeParallel
// matches Optimize (and hence the reference) for every worker count 1..8 —
// including counts above the cell count — on randomized instances covering
// non-convex curves, Minimax, and bounds.
func TestOptimizeParallelBitExactAllWorkerCounts(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*97))
		pr := randDiffProblem(rng)
		want, errW := Optimize(pr)
		for workers := 1; workers <= 8; workers++ {
			got, errG := OptimizeParallel(nil, pr, workers)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("seed %d workers %d: err %v vs %v", seed, workers, errG, errW)
			}
			if errW != nil {
				continue
			}
			if got.Objective != want.Objective {
				t.Fatalf("seed %d workers %d: objective %v != %v", seed, workers, got.Objective, want.Objective)
			}
			if !reflect.DeepEqual(got.Alloc, want.Alloc) {
				t.Fatalf("seed %d workers %d: alloc %v != %v", seed, workers, got.Alloc, want.Alloc)
			}
		}
	}
}

// TestOptimizeMatchesBruteForceRandomized cross-checks the kernel against
// exhaustive enumeration — the ground truth independent of either DP
// implementation.
func TestOptimizeMatchesBruteForceRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 120; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*13+7))
		pr := randDiffProblem(rng)
		bf, errB := BruteForce(pr)
		dp, errD := Optimize(pr)
		if (errB == nil) != (errD == nil) {
			t.Fatalf("seed %d: brute err %v, dp err %v", seed, errB, errD)
		}
		if errB != nil {
			continue
		}
		if dp.Objective != bf.Objective {
			t.Fatalf("seed %d: dp objective %v != brute force %v", seed, dp.Objective, bf.Objective)
		}
	}
}

// TestCostTableMatchesCostFunc asserts that solving with a precomputed
// CostTable is bit-identical to solving with the equivalent cost source,
// for both the default miss-count cost and a custom Cost function.
func TestCostTableMatchesCostFunc(t *testing.T) {
	for seed := uint64(1); seed <= 80; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*1009))
		pr := randDiffProblem(rng)
		tab := make([][]float64, len(pr.Curves))
		for p := range tab {
			tab[p] = make([]float64, pr.Units+1)
			for u := 0; u <= pr.Units; u++ {
				tab[p][u] = pr.cost(p, u)
			}
		}
		want, errW := Optimize(pr)
		tpr := pr
		tpr.CostTable = tab
		got, errG := Optimize(tpr)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: err %v vs %v", seed, errG, errW)
		}
		if errW != nil {
			continue
		}
		if got.Objective != want.Objective || !reflect.DeepEqual(got.Alloc, want.Alloc) {
			t.Fatalf("seed %d: table solve (%v, %v) != direct (%v, %v)",
				seed, got.Objective, got.Alloc, want.Objective, want.Alloc)
		}
	}
}

// TestCheckedKernelFallback drives the solve into the checked kernels with
// astronomically large and non-finite custom costs and cross-checks against
// the reference implementation, which handles sentinels the same way.
func TestCheckedKernelFallback(t *testing.T) {
	huge := math.MaxFloat64 / 4
	costs := []func(p, u int) float64{
		func(p, u int) float64 { return huge },
		func(p, u int) float64 {
			if u == 0 {
				return math.Inf(1)
			}
			return float64(u)
		},
		func(p, u int) float64 { return -huge + float64(p*1000+u) },
	}
	for ci, cost := range costs {
		for _, combine := range []Combine{Sum, Minimax} {
			curves := []mrc.Curve{
				mkCurve("a", 100, 1.0, 0.5, 0.2, 0.1),
				mkCurve("b", 100, 0.9, 0.6, 0.3, 0.0),
			}
			pr := Problem{Curves: curves, Units: 3, Cost: cost, Combine: combine}
			want, errW := ReferenceOptimize(pr)
			got, errG := Optimize(pr)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("cost %d combine %v: err %v vs %v", ci, combine, errG, errW)
			}
			if errW != nil {
				continue
			}
			if got.Objective != want.Objective || !reflect.DeepEqual(got.Alloc, want.Alloc) {
				t.Fatalf("cost %d combine %v: (%v, %v) != reference (%v, %v)",
					ci, combine, got.Objective, got.Alloc, want.Objective, want.Alloc)
			}
		}
	}
}

// TestEvaluateMinimaxNegativeCosts is the regression test for the Minimax
// accumulator: Evaluate must start from -Inf (the identity of max) so an
// all-negative custom cost is reported as the true worst cost, not clamped
// to zero — matching Optimize and BruteForce.
func TestEvaluateMinimaxNegativeCosts(t *testing.T) {
	curves := []mrc.Curve{
		mkCurve("a", 100, 1.0, 0.5, 0.2),
		mkCurve("b", 100, 0.9, 0.4, 0.1),
	}
	// Speedup-style cost: always negative, improving with allocation.
	cost := func(p, u int) float64 { return -float64(u+1) * float64(p+1) }
	pr := Problem{Curves: curves, Units: 2, Cost: cost, Combine: Minimax}
	sol, err := Evaluate(pr, Allocation{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(cost(0, 1), cost(1, 1)) // -2: the larger (worse) of the two
	if sol.Objective != want {
		t.Fatalf("Evaluate Minimax objective = %v, want %v", sol.Objective, want)
	}
	// Cross-check consistency with the optimizers on the same problem.
	bf, err := BruteForce(pr)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Objective != bf.Objective {
		t.Fatalf("Optimize objective %v != BruteForce %v", dp.Objective, bf.Objective)
	}
	ev, err := Evaluate(pr, bf.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Objective != bf.Objective {
		t.Fatalf("Evaluate(%v) = %v, want BruteForce objective %v", bf.Alloc, ev.Objective, bf.Objective)
	}
}

// TestOptimizeBaselineSharesCostTable asserts the table-carrying baseline
// entry point equals the classic curves-based one.
func TestOptimizeBaselineSharesCostTable(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*71))
		units := rng.IntN(12) + 4
		n := rng.IntN(3) + 2
		curves := make([]mrc.Curve, n)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units).MonotoneRepair()
		}
		baseline := EqualAllocation(n, units)
		want, errW := OptimizeWithBaseline(curves, units, baseline)
		tab := make([][]float64, n)
		for p := range tab {
			tab[p] = make([]float64, units+1)
			for u := 0; u <= units; u++ {
				tab[p][u] = curves[p].MissCount(u)
			}
		}
		got, errG := OptimizeBaseline(Problem{Curves: curves, Units: units, CostTable: tab}, baseline)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: err %v vs %v", seed, errG, errW)
		}
		if errW != nil {
			continue
		}
		if got.Objective != want.Objective || !reflect.DeepEqual(got.Alloc, want.Alloc) {
			t.Fatalf("seed %d: table baseline (%v, %v) != classic (%v, %v)",
				seed, got.Objective, got.Alloc, want.Objective, want.Alloc)
		}
	}
}
