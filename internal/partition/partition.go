// Package partition implements the paper's core contribution (§V-B, §VI):
// optimal cache partitioning by dynamic programming over arbitrary
// miss-ratio curves and objective functions, baseline-constrained (fair)
// optimization, and the classic Stone–Thiebaut–Turek–Wolf (STTW) greedy
// partitioner used as the comparison baseline.
//
// The optimizer assigns whole cache units to programs so that the combined
// objective is minimized and the units sum exactly to the cache size
// (Eq. 15). The dynamic program adds one program at a time (Eq. 16): the
// optimal split of k units among the first i programs extends the optimal
// splits of k−cᵢ units among the first i−1. Time O(P·C²), space O(P·C).
package partition

import (
	"fmt"
	"math"

	"partitionshare/internal/mrc"
)

// Allocation assigns cache units to each program.
type Allocation []int

// Total returns the number of units allocated.
func (a Allocation) Total() int {
	t := 0
	for _, u := range a {
		t += u
	}
	return t
}

// Combine selects how per-program costs aggregate into the objective.
type Combine int

const (
	// Sum minimizes the total cost — with the default miss-count cost,
	// the group miss ratio (the paper's primary objective).
	Sum Combine = iota
	// Minimax minimizes the worst per-program cost — a pure fairness
	// objective, demonstrating the DP's objective generality (§V-B).
	Minimax
)

// Problem describes one partitioning instance.
type Problem struct {
	// Curves holds one miss-ratio curve per program.
	Curves []mrc.Curve
	// Units is the cache size C in partition units.
	Units int
	// MinAlloc and MaxAlloc bound each program's allocation (inclusive).
	// nil means 0 and C respectively. Baseline-constrained optimization
	// (§VI) sets MinAlloc.
	MinAlloc, MaxAlloc []int
	// Cost gives program p's cost at u units. nil means miss count,
	// Curves[p].MissCount(u). Any function is legal: the optimizer makes
	// no convexity or monotonicity assumption. The function must be
	// deterministic — the optimizer may re-evaluate it (the lazy
	// allocation reconstruction rescans candidate windows after the value
	// pass) and assumes repeated calls return identical float64 values.
	Cost func(p, u int) float64
	// CostTable, when non-nil, holds precomputed costs: CostTable[p][u] is
	// program p's cost at u units, for u in [0, Units]. It takes precedence
	// over Cost and the curve lookup, and exists so batch harnesses (the
	// experiment sweep) can compute each program's miss-count column once
	// and share it across thousands of solves. Rows may be shared between
	// Problems; the optimizer never writes them.
	CostTable [][]float64
	// Combine selects the aggregation (default Sum).
	Combine Combine
	// Solver selects the solving strategy (default SolverAuto). Every
	// strategy returns bit-identical Solutions; see solver.go and
	// DESIGN.md §13.
	Solver Solver
}

// MaxUnits bounds Problem.Units. It exists to keep every index product in
// the DP — (P+1)·(C+1) scratch cells, C² candidate scans — comfortably
// inside int64 even on 32-bit int platforms, and to fail fast on garbage
// sizes before allocating gigabytes of scratch.
const MaxUnits = 1 << 24

// maxSolveCells bounds the DP table size (programs+1)·(units+1) a single
// solve may allocate (1 GiB of float64s). C=65536 with hundreds of
// programs stays well inside; genuinely larger instances need a sharded
// solver, not a bigger buffer.
const maxSolveCells = 1 << 27

func (pr *Problem) cost(p, u int) float64 {
	if pr.CostTable != nil {
		return pr.CostTable[p][u]
	}
	if pr.Cost != nil {
		return pr.Cost(p, u)
	}
	return pr.Curves[p].MissCount(u)
}

func (pr *Problem) bounds(p int) (lo, hi int) {
	lo, hi = 0, pr.Units
	if pr.MinAlloc != nil {
		lo = pr.MinAlloc[p]
	}
	if pr.MaxAlloc != nil && pr.MaxAlloc[p] < hi {
		hi = pr.MaxAlloc[p]
	}
	return lo, hi
}

func (pr *Problem) validate() error {
	n := len(pr.Curves)
	if n == 0 {
		return fmt.Errorf("partition: no programs")
	}
	if pr.Units <= 0 {
		return fmt.Errorf("partition: non-positive cache size %d", pr.Units)
	}
	if pr.Units > MaxUnits {
		return fmt.Errorf("partition: cache size %d exceeds MaxUnits %d", pr.Units, MaxUnits)
	}
	if cells := (int64(n) + 1) * (int64(pr.Units) + 1); cells > maxSolveCells {
		return fmt.Errorf("partition: DP table needs %d cells for %d programs × %d units (limit %d)", cells, n, pr.Units, maxSolveCells)
	}
	if pr.MinAlloc != nil && len(pr.MinAlloc) != n {
		return fmt.Errorf("partition: MinAlloc has %d entries for %d programs", len(pr.MinAlloc), n)
	}
	if pr.MaxAlloc != nil && len(pr.MaxAlloc) != n {
		return fmt.Errorf("partition: MaxAlloc has %d entries for %d programs", len(pr.MaxAlloc), n)
	}
	if pr.CostTable != nil {
		if len(pr.CostTable) != n {
			return fmt.Errorf("partition: CostTable has %d rows for %d programs", len(pr.CostTable), n)
		}
		for p, row := range pr.CostTable {
			if len(row) < pr.Units+1 {
				return fmt.Errorf("partition: CostTable row %d has %d entries, need %d", p, len(row), pr.Units+1)
			}
		}
	}
	minSum := 0
	for p := 0; p < n; p++ {
		lo, hi := pr.bounds(p)
		if lo < 0 || hi < lo {
			return fmt.Errorf("partition: program %d has invalid bounds [%d,%d]", p, lo, hi)
		}
		minSum += lo
	}
	if minSum > pr.Units {
		return fmt.Errorf("partition: lower bounds sum to %d > cache size %d", minSum, pr.Units)
	}
	maxSum := 0
	for p := 0; p < n; p++ {
		_, hi := pr.bounds(p)
		maxSum += hi
	}
	if maxSum < pr.Units {
		return fmt.Errorf("partition: upper bounds sum to %d < cache size %d", maxSum, pr.Units)
	}
	return nil
}

// Solution is the result of an optimization.
type Solution struct {
	Alloc Allocation
	// Objective is the combined objective value (total miss count for
	// the default Sum objective).
	Objective float64
	// GroupMissRatio is total misses over total accesses under Alloc,
	// independent of the objective used.
	GroupMissRatio float64
	// MissRatios holds each program's miss ratio under Alloc.
	MissRatios []float64
	// SolverPath records which rungs of the solver ladder actually ran
	// ("exact", "dc+exact", "refine", "refine-fallback+exact", …). Purely
	// informational: every path produces bit-identical results. Only
	// Optimize and OptimizeParallel populate it.
	SolverPath string
}

func (pr *Problem) solution(alloc Allocation, obj float64) Solution {
	s := Solution{
		Alloc:          alloc,
		Objective:      obj,
		GroupMissRatio: mrc.GroupMissRatio(pr.Curves, alloc),
		MissRatios:     make([]float64, len(pr.Curves)),
	}
	for p, c := range pr.Curves {
		s.MissRatios[p] = c.MissRatio(alloc[p])
	}
	return s
}

// Optimize finds the allocation minimizing the combined objective subject
// to the allocation summing exactly to Units and respecting the per-program
// bounds. It examines the entire solution space by dynamic programming —
// no convexity assumption — in O(P·C²) worst-case time and O(P·C) space.
// The DP runs on a ladder of solvers (solver.go, DESIGN.md §13): exact
// structure certificates route eligible instances through coarse-to-fine
// refinement or divide-and-conquer/SMAWK layer schedules — near-linear in
// C in practice — while anything uncertified drops to the pooled exact
// gather kernel (kernel.go). Every rung, on every input, produces output —
// objective, allocation, even tie-breaking — bit-identical to the
// reference implementation (see ReferenceOptimize); Problem.Solver can
// force a rung and Solution.SolverPath reports what ran.
func Optimize(pr Problem) (Solution, error) {
	return solve(nil, &pr, 1)
}

func errNoFeasible() error {
	return fmt.Errorf("partition: no feasible allocation (internal)")
}

func errLeftover(k int) error {
	return fmt.Errorf("partition: reconstruction leftover %d units (internal)", k)
}

// Evaluate builds a Solution for a fixed allocation without optimizing,
// using the problem's cost and combine rules. The allocation must respect
// the problem's size.
func Evaluate(pr Problem, alloc Allocation) (Solution, error) {
	if len(alloc) != len(pr.Curves) {
		return Solution{}, fmt.Errorf("partition: allocation for %d programs, want %d", len(alloc), len(pr.Curves))
	}
	if err := pr.validate(); err != nil {
		return Solution{}, err
	}
	// Start from the combine identity — 0 for Sum, -Inf for Minimax — as
	// Optimize and BruteForce do; starting Minimax at 0 would silently
	// clamp all-negative custom costs.
	var obj float64
	if pr.Combine == Minimax {
		obj = math.Inf(-1)
	}
	for p := range pr.Curves {
		c := pr.cost(p, alloc[p])
		if pr.Combine == Minimax {
			obj = math.Max(obj, c)
		} else {
			obj += c
		}
	}
	return pr.solution(alloc, obj), nil
}

// BruteForce enumerates every allocation of Units units among the programs
// (respecting bounds) and returns the best. Exponential; exported for
// cross-checking the DP in tests and for the exhaustive partition-sharing
// study on tiny instances.
func BruteForce(pr Problem) (Solution, error) {
	if err := pr.validate(); err != nil {
		return Solution{}, err
	}
	n, C := len(pr.Curves), pr.Units
	best := Solution{Objective: math.Inf(1)}
	alloc := make(Allocation, n)
	var rec func(p, left int, acc float64)
	rec = func(p, left int, acc float64) {
		if p == n-1 {
			lo, hi := pr.bounds(p)
			if left < lo || left > hi {
				return
			}
			alloc[p] = left
			c := pr.cost(p, left)
			var obj float64
			if pr.Combine == Minimax {
				obj = math.Max(acc, c)
			} else {
				obj = acc + c
			}
			if obj < best.Objective {
				cp := make(Allocation, n)
				copy(cp, alloc)
				best = pr.solution(cp, obj)
			}
			return
		}
		lo, hi := pr.bounds(p)
		for u := lo; u <= hi && u <= left; u++ {
			alloc[p] = u
			c := pr.cost(p, u)
			if pr.Combine == Minimax {
				rec(p+1, left-u, math.Max(acc, c))
			} else {
				rec(p+1, left-u, acc+c)
			}
		}
	}
	start := 0.0
	if pr.Combine == Minimax {
		start = math.Inf(-1)
	}
	rec(0, C, start)
	if math.IsInf(best.Objective, 1) {
		return Solution{}, fmt.Errorf("partition: no feasible allocation")
	}
	return best, nil
}
