package partition

import (
	"math"
	"math/rand/v2"
	"testing"

	"partitionshare/internal/mrc"
)

func randProblem(seed uint64, n, units int) Problem {
	rng := rand.New(rand.NewPCG(seed, seed*97))
	curves := make([]mrc.Curve, n)
	for p := range curves {
		curves[p] = randCurve(rng, "p", units)
	}
	return Problem{Curves: curves, Units: units}
}

func TestOptimizeParallelMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		pr := randProblem(seed, int(seed%4)+2, int(seed%40)+8)
		seq, err := Optimize(pr)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 7, 0} {
			par, err := OptimizeParallel(nil, pr, workers)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(par.Objective-seq.Objective) > 1e-9 {
				t.Errorf("seed %d workers %d: parallel %v vs sequential %v",
					seed, workers, par.Objective, seq.Objective)
			}
			if par.Alloc.Total() != pr.Units {
				t.Errorf("seed %d: parallel alloc sums to %d", seed, par.Alloc.Total())
			}
		}
	}
}

func TestOptimizeParallelMinimax(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		pr := randProblem(seed, 3, 16)
		pr.Combine = Minimax
		seq, err := Optimize(pr)
		if err != nil {
			t.Fatal(err)
		}
		par, err := OptimizeParallel(nil, pr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(par.Objective-seq.Objective) > 1e-9 {
			t.Errorf("seed %d: minimax parallel %v vs sequential %v", seed, par.Objective, seq.Objective)
		}
	}
}

func TestOptimizeParallelWithBounds(t *testing.T) {
	pr := randProblem(3, 3, 20)
	pr.MinAlloc = []int{2, 0, 5}
	pr.MaxAlloc = []int{10, 20, 20}
	seq, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	par, err := OptimizeParallel(nil, pr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(par.Objective-seq.Objective) > 1e-9 {
		t.Errorf("bounded: parallel %v vs sequential %v", par.Objective, seq.Objective)
	}
	for p, u := range par.Alloc {
		if u < pr.MinAlloc[p] || u > pr.MaxAlloc[p] {
			t.Errorf("parallel alloc %v violates bounds", par.Alloc)
		}
	}
}

func TestOptimizeParallelInfeasible(t *testing.T) {
	pr := randProblem(1, 2, 4)
	pr.MinAlloc = []int{3, 3}
	if _, err := OptimizeParallel(nil, pr, 2); err == nil {
		t.Fatal("expected error")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 11))
	units := 24
	curves := []mrc.Curve{
		randCurve(rng, "a", units),
		randCurve(rng, "b", units),
		randCurve(rng, "c", units),
		randCurve(rng, "d", units),
	}
	inc := NewIncremental(units)
	for i, c := range curves {
		if err := inc.Push(c); err != nil {
			t.Fatal(err)
		}
		got, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Optimize(Problem{Curves: curves[:i+1], Units: units})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("after %d pushes: incremental %v vs batch %v", i+1, got.Objective, want.Objective)
		}
	}
	// Pop back down and re-check each prefix.
	for i := len(curves) - 1; i >= 1; i-- {
		if err := inc.Pop(); err != nil {
			t.Fatal(err)
		}
		got, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Optimize(Problem{Curves: curves[:i], Units: units})
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("after pop to %d: incremental %v vs batch %v", i, got.Objective, want.Objective)
		}
	}
	if inc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", inc.Len())
	}
}

func TestIncrementalPushPopScenario(t *testing.T) {
	// Scheduler scenario: try candidate partners for a fixed base pair.
	rng := rand.New(rand.NewPCG(9, 3))
	units := 16
	base := []mrc.Curve{randCurve(rng, "x", units), randCurve(rng, "y", units)}
	inc := NewIncremental(units)
	for _, c := range base {
		if err := inc.Push(c); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 5; trial++ {
		cand := randCurve(rng, "cand", units)
		if err := inc.Push(cand); err != nil {
			t.Fatal(err)
		}
		got, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Optimize(Problem{Curves: append(append([]mrc.Curve{}, base...), cand), Units: units})
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("trial %d: incremental %v vs batch %v", trial, got.Objective, want.Objective)
		}
		if err := inc.Pop(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc := NewIncremental(8)
	if err := inc.Pop(); err == nil {
		t.Error("Pop on empty should error")
	}
	if _, err := inc.Solve(); err == nil {
		t.Error("Solve on empty should error")
	}
	if err := inc.Push(mrc.Curve{Name: "bad"}); err == nil {
		t.Error("Push of invalid curve should error")
	}
}

func TestNewIncrementalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIncremental(0)
}

func TestQoSMinAlloc(t *testing.T) {
	c := mkCurve("a", 100, 1.0, 0.5, 0.2, 0.1, 0.05)
	mins, err := QoSMinAlloc([]mrc.Curve{c}, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if mins[0] != 2 {
		t.Errorf("min = %v, want [2]", mins)
	}
	// Unconstrained entries.
	mins, err = QoSMinAlloc([]mrc.Curve{c}, []float64{math.NaN()})
	if err != nil || mins[0] != 0 {
		t.Errorf("NaN target: mins %v err %v", mins, err)
	}
	mins, err = QoSMinAlloc([]mrc.Curve{c}, []float64{1.5})
	if err != nil || mins[0] != 0 {
		t.Errorf(">=1 target: mins %v err %v", mins, err)
	}
	// Unreachable and invalid targets.
	if _, err = QoSMinAlloc([]mrc.Curve{c}, []float64{0.01}); err == nil {
		t.Error("unreachable target should error")
	}
	if _, err = QoSMinAlloc([]mrc.Curve{c}, []float64{-0.1}); err == nil {
		t.Error("negative target should error")
	}
	if _, err = QoSMinAlloc([]mrc.Curve{c}, nil); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestOptimizeWithQoS(t *testing.T) {
	a := mkCurve("a", 1000, 1.0, 0.5, 0.2, 0.1, 0.05)
	b := mkCurve("b", 1000, 0.8, 0.6, 0.4, 0.3, 0.2)
	sol, err := OptimizeWithQoS([]mrc.Curve{a, b}, 4, []float64{0.2, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MissRatios[0] > 0.2+1e-12 {
		t.Errorf("QoS violated: a's mr = %v", sol.MissRatios[0])
	}
	// Jointly infeasible ceilings.
	if _, err := OptimizeWithQoS([]mrc.Curve{a, b}, 4, []float64{0.05, 0.2}); err == nil {
		t.Error("expected joint infeasibility error")
	}
}

func BenchmarkOptimizeParallel4x1024(b *testing.B) {
	pr := randProblem(1, 4, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeParallel(nil, pr, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalPush1024(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	c := randCurve(rng, "p", 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := NewIncremental(1024)
		if err := inc.Push(c); err != nil {
			b.Fatal(err)
		}
	}
}
