package partition

import "math"

// This file implements the ladder's structured per-layer rung: an exact
// convexity certificate over a layer's cost row, and — for rows that pass
// it — divide-and-conquer scheduling of the layer minimization with SMAWK
// on the constant-window middle band, O(W log T) / O(W + T) instead of the
// exact kernel's O(W·T).
//
// Why convexity is the right check: the layer matrix is
//
//	A[t][j] = dp[j] + c(t−j)
//
// and its Monge cross-difference A[t][j] + A[t+1][j+1] − A[t][j+1] −
// A[t+1][j] = c(t−j) + c(t−j) − c(t−j+1) − c(t−j−1) — the dp term cancels,
// so A is (inverse) Monge over the real numbers if and only if the cost
// row c is convex. Monge implies the leftmost row argmin is non-decreasing
// in t, which is exactly what both schedulers exploit.
//
// Exactness: the certificate tests convexity of the *stored float64
// values* exactly (error-free twoSum comparison, no tolerance), so the
// Monge property holds over the reals for the numbers the kernels actually
// combine. Both schedulers compute each selected cell with the same
// float64 operation (dp[j] + c) and a strict-improve compare over a
// restricted window, so a scheduled cell's value equals the full scan's
// value whenever the restricted window contains a global argmin — which
// the Monge argmin monotonicity guarantees. Sub-ulp caveat, documented in
// DESIGN.md §13: when two columns' real sums differ by less than one ulp
// their float64 minima coincide, and the window split may follow either
// column; the minimum *value* is unchanged by construction, and the
// allocation never depends on the split because reconstructAlloc rescans
// full windows. The certificate additionally requires non-negative costs
// with no negative zeros, so tie values cannot differ in sign bits either.
// Differential tests and FuzzOptimize compare every path against
// ReferenceOptimize bit for bit.

// layerCert incrementally certifies one layer's cost row while the solve
// materializes it: every cost finite and non-negative (no -0), and the
// row exactly convex. Rows failing any clause route to the exact kernel.
type layerCert struct {
	active bool
	count  int
	prev1  float64
	prev2  float64
}

func newLayerCert(active bool) layerCert {
	return layerCert{active: active}
}

func (lc *layerCert) observe(c float64) {
	if !lc.active {
		return
	}
	if !(c >= 0) || (c == 0 && math.Signbit(c)) {
		lc.active = false
		return
	}
	if lc.count >= 2 && !secondDiffNonneg(lc.prev2, lc.prev1, c) {
		lc.active = false
		return
	}
	lc.prev2, lc.prev1 = lc.prev1, c
	lc.count++
}

func (lc *layerCert) certified() bool { return lc.active && lc.count >= 2 }

// secondDiffNonneg reports whether a + c ≥ 2b holds over the reals for the
// given float64 values — the convexity condition at one interior point —
// using the error-free twoSum transformation, so the comparison is exact
// with no tolerance. Inputs are non-negative and below costSafeLimit, so
// neither a+c nor 2b can overflow.
func secondDiffNonneg(a, b, c float64) bool {
	s, e := twoSum(a, c)
	d := 2 * b
	if s > d {
		return true
	}
	if s < d {
		return false
	}
	// s == d as floats; the discarded rounding error decides the real
	// comparison: a + c = s + e exactly.
	return e >= 0
}

// twoSum returns s = fl(a+b) and the exact rounding error e such that
// a + b = s + e over the reals (Knuth's branch-free two-sum).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bb := s - a
	e = (a - bb) + (b - (s - bb))
	return s, e
}

// smawkMinDim gates the SMAWK middle band: below it the d&c scheduler's
// tight contiguous scans win over SMAWK's indirect lookups.
const smawkMinDim = 64

// dcLayer computes one certified-convex layer: SMAWK over the middle band
// of rows whose candidate window is the full previous interval, and
// monotone divide and conquer over the two staircase ends where the window
// is clipped by the layer bounds.
func dcLayer(sp *layerSpec, path *solvePath) {
	C := len(sp.next) - 1
	newLo := sp.prevLo + sp.lo
	newHi := sp.prevHi + sp.hi
	if newHi > C {
		newHi = C
	}
	for t := 0; t < newLo; t++ {
		sp.next[t] = inf
	}
	for t := newHi + 1; t <= C; t++ {
		sp.next[t] = inf
	}
	if newLo > newHi {
		return
	}
	// Middle band: window = [prevLo, prevHi] exactly.
	mLo := sp.prevHi + sp.lo
	mHi := sp.prevLo + sp.hi
	if mLo < newLo {
		mLo = newLo
	}
	if mHi > newHi {
		mHi = newHi
	}
	cols := sp.prevHi - sp.prevLo + 1
	if mHi-mLo+1 >= smawkMinDim && cols >= smawkMinDim {
		argLo, argHi := smawkBand(sp, mLo, mHi)
		path.smawkRows += mHi - mLo + 1
		dcRec(sp, newLo, mLo-1, sp.prevLo, argLo)
		dcRec(sp, mHi+1, newHi, argHi, sp.prevHi)
		return
	}
	dcRec(sp, newLo, newHi, sp.prevLo, sp.prevHi)
}

// dcRec fills next[tA..tB] given that every row's leftmost argmin lies in
// [jA, jB]: it solves the middle row with one restricted scan and splits
// the column range at its argmin — the classic monotone divide and
// conquer, O((tB−tA) log + (jB−jA)) cell candidates total.
func dcRec(sp *layerSpec, tA, tB, jA, jB int) {
	for tA <= tB {
		mid := tA + (tB-tA)/2
		j0, j1 := jA, jB
		if v := mid - sp.hi; v > j0 {
			j0 = v
		}
		if sp.prevLo > j0 {
			j0 = sp.prevLo
		}
		if v := mid - sp.lo; v < j1 {
			j1 = v
		}
		if sp.prevHi < j1 {
			j1 = sp.prevHi
		}
		if j0 > j1 {
			// Defensive: the staircase invariants make the window
			// non-empty; if violated, fall back to the full window so the
			// cell value stays exact.
			j0, j1 = sp.prevLo, sp.prevHi
			if v := mid - sp.hi; v > j0 {
				j0 = v
			}
			if v := mid - sp.lo; v < j1 {
				j1 = v
			}
		}
		best, bestJ := cellSum(sp.dp, sp.costsRev, sp.hi-mid, j0, j1)
		sp.next[mid] = best
		// Recurse on the smaller left half, iterate on the right.
		dcRec(sp, tA, mid-1, jA, bestJ)
		tA = mid + 1
		jA = bestJ
	}
}

// smawkBand runs SMAWK over rows [mLo, mHi] (full window [prevLo, prevHi])
// and returns the argmins of the band's first and last rows, which bound
// the staircase recursions on either side.
func smawkBand(sp *layerSpec, mLo, mHi int) (argLo, argHi int) {
	rows := make([]int, mHi-mLo+1)
	for i := range rows {
		rows[i] = mLo + i
	}
	cols := make([]int, sp.prevHi-sp.prevLo+1)
	for i := range cols {
		cols[i] = sp.prevLo + i
	}
	lookup := func(t, j int) float64 {
		return sp.dp[j] + sp.costsRev[sp.hi-t+j]
	}
	arg := smawkSolve(rows, cols, lookup)
	for i, t := range rows {
		sp.next[t] = lookup(t, arg[i])
	}
	return arg[0], arg[len(arg)-1]
}

// smawkSolve returns, for each row of an (implicitly stored) totally
// monotone matrix, a column attaining the row minimum, with argmins
// non-decreasing across rows. Comparisons pop strictly smaller entries
// only, so tied columns keep the earlier (leftmost) candidate.
func smawkSolve(rows, cols []int, A func(t, j int) float64) []int {
	if len(rows) == 1 {
		best := cols[0]
		for _, c := range cols[1:] {
			if A(rows[0], c) < A(rows[0], best) {
				best = c
			}
		}
		return []int{best}
	}
	cols = smawkReduce(rows, cols, A)
	odd := make([]int, 0, len(rows)/2)
	for i := 1; i < len(rows); i += 2 {
		odd = append(odd, rows[i])
	}
	res := make([]int, len(rows))
	if len(odd) > 0 {
		oddArg := smawkSolve(odd, cols, A)
		for i, oi := 1, 0; i < len(rows); i, oi = i+2, oi+1 {
			res[i] = oddArg[oi]
		}
	}
	// Interpolate the even rows: row i's argmin lies between its solved
	// neighbors' argmins, and cols is sorted ascending, so one forward
	// sweep over cols covers all even rows.
	ci := 0
	for i := 0; i < len(rows); i += 2 {
		loC := cols[0]
		if i > 0 {
			loC = res[i-1]
		}
		hiC := cols[len(cols)-1]
		if i+1 < len(rows) {
			hiC = res[i+1]
		}
		for cols[ci] < loC {
			ci++
		}
		r := rows[i]
		best := cols[ci]
		for k := ci + 1; k < len(cols) && cols[k] <= hiC; k++ {
			if A(r, cols[k]) < A(r, best) {
				best = cols[k]
			}
		}
		res[i] = best
	}
	return res
}

// smawkReduce prunes cols to at most len(rows) candidates that can still
// hold some row's minimum (the classic stack REDUCE step).
func smawkReduce(rows, cols []int, A func(t, j int) float64) []int {
	stack := make([]int, 0, len(rows))
	for _, c := range cols {
		for len(stack) > 0 {
			r := rows[len(stack)-1]
			if A(r, c) < A(r, stack[len(stack)-1]) {
				stack = stack[:len(stack)-1]
			} else {
				break
			}
		}
		if len(stack) < len(rows) {
			stack = append(stack, c)
		}
	}
	return stack
}
