package partition

import (
	"context"
	"math"
)

// Coarse-to-fine refinement (DESIGN.md §13): solve the instance on a
// coarse granularity grid, derive an upper bound B from the coarse
// allocation evaluated on the fine costs, and use exact two-sided coarse
// DP lower bounds to prune every fine DP cell that provably cannot lie on
// an optimal (or tying) path. Levels descend geometrically (g, g/8, …, 1),
// each level re-banding the next, so the final exact pass touches only a
// narrow band around the optimum instead of all O(P·C²) cells.
//
// Exactness, not approximation: the coarse tables bound the *real-number*
// DP from below (block-minimum costs, floor-mapped totals), the upper
// bound B is an achievable float64 path value accumulated in the DP's own
// left-to-right order (hence B ≥ the float64 optimum), and a cell is
// pruned only when lowerBound > B·(1+refineMargin), with the margin chosen
// orders of magnitude above the worst-case float64 drift of the bound
// sums. Any cell on a float64-optimal path — or tying one — therefore
// survives pruning; the surviving band is solved by the exact kernels over
// the exact costs; and reconstructAlloc's full-window rescan reproduces
// the reference tie-breaking bit for bit (see the soundness walk-through
// in DESIGN.md §13.3). Every guard failure falls back to the per-layer
// ladder, so refinement can be slow to decline but never wrong.
//
// Eligibility: Sum objective, no per-program bounds, n ≥ 2 programs, and
// every cost finite, non-negative, and free of negative zeros. Relative
// margins are meaningless under cancellation, which is why negative custom
// costs are declined rather than risked.

const (
	// refineAutoMinUnits is the C at or above which SolverAuto attempts
	// refinement; below it the exact kernel is already fast enough that
	// the coarse solves would dominate.
	refineAutoMinUnits = 2048
	// refineMinUnits is the hard floor even under SolverRefine: below it
	// no useful level schedule exists.
	refineMinUnits = 512
	// refineMargin is the relative slack added to the upper bound before
	// pruning. It exceeds the worst-case relative float64 drift of the
	// bound arithmetic (~n·2⁻⁵²) by several orders of magnitude; widening
	// it only retains more cells, never changes results.
	refineMargin = 1e-9
	// refineCoarsestCells bounds the coarsest level's grid size. The
	// coarsest level is the only one solved unbanded (O(n·TB²)), so its
	// grid is kept tiny; every finer level is banded by its predecessor.
	refineCoarsestCells = 48
	refineLevelRatio    = 8
)

// refineWorkBudget is the per-stage cell-scan budget: a banded level or
// the fine pass may cost at most this many candidate scans before the
// solve bails to the exact ladder. The exact solve this rung replaces
// scans ~n·(C+1)²/2 candidates, so capping each of the few stages at an
// eighth of that bounds a worst-case (adversarially flat, tie-saturated)
// refinement at roughly the exact solve's cost while letting moderately
// wide bands — still far cheaper than exact — run to completion.
func refineWorkBudget(n, C int) int64 {
	c1 := int64(C) + 1
	return int64(n) * c1 * c1 / 8
}

// refineLevel holds one granularity level's two-sided lower-bound tables.
// dlow[p][S] bounds from below (over the reals) the cost of any fine
// prefix allocation of programs 0..p whose block-floor total Σ⌊u_q/g⌋
// equals S; elow[p][S] is the mirror-image bound for suffix programs
// p..n−1.
type refineLevel struct {
	g, TB int
	dlow  [][]float64
	elow  [][]float64
	// dspan/espan record each row's finite-entry range [min, max]
	// (max < min when empty). Rows live in pooled, uncleared arenas and
	// are only written on the banded range, so every consumer restricts
	// its reads to these spans.
	dspan [][2]int
	espan [][2]int
}

// refineSolve attempts the refinement rung. On success it fills s.rows and
// s.metas exactly as the per-layer loop would (values at unpruned cells,
// inf elsewhere) and returns true; on ineligibility or any guard failure
// it returns false with the scratch base row intact so the caller can fall
// through to the per-layer ladder.
func refineSolve(ctx context.Context, pr *Problem, s *scratch, path *solvePath) (bool, error) {
	n, C := len(pr.Curves), pr.Units
	if pr.Combine != Sum || n < 2 || C < refineMinUnits {
		return false, nil
	}
	for p := 0; p < n; p++ {
		if lo, hi := pr.bounds(p); lo != 0 || hi < C {
			return false, nil
		}
	}

	// Materialize the cost table (or alias a caller-provided one) and
	// certify it in the same pass: finite, non-negative, no negative
	// zeros, cumulative magnitude inside the unchecked-kernel safe range.
	costs := make([][]float64, n)
	if pr.CostTable == nil {
		need := n * (C + 1)
		if cap(s.costBuf) < need {
			s.costBuf = make([]float64, need)
		} else {
			s.costBuf = s.costBuf[:need]
		}
	}
	costBound := 0.0
	for p := 0; p < n; p++ {
		switch {
		case pr.CostTable != nil:
			costs[p] = pr.CostTable[p][:C+1]
		case pr.Cost == nil && len(pr.Curves[p].MR) >= C+1:
			// Default miss-count cost over a fully-sampled curve: scale the
			// MR column directly instead of paying a method call per unit.
			row := s.costBuf[p*(C+1) : (p+1)*(C+1)]
			acc := float64(pr.Curves[p].Accesses)
			for u, mr := range pr.Curves[p].MR[:C+1] {
				row[u] = mr * acc
			}
			costs[p] = row
		default:
			row := s.costBuf[p*(C+1) : (p+1)*(C+1)]
			for u := 0; u <= C; u++ {
				row[u] = pr.cost(p, u)
			}
			costs[p] = row
		}
		layerMax := 0.0
		for _, c := range costs[p] {
			if !(c >= 0) || (c == 0 && math.Signbit(c)) {
				path.refineFallback = true
				return false, nil
			}
			if c > layerMax {
				layerMax = c
			}
		}
		costBound += layerMax
	}
	if !(costBound < costSafeLimit) {
		path.refineFallback = true
		return false, nil
	}

	// Level schedule: the coarsest power of refineLevelRatio whose grid
	// fits refineCoarsestCells, then /ratio per level down to (but not
	// including) the fine grid.
	top := 1
	for C/top+1 > refineCoarsestCells {
		top *= refineLevelRatio
	}
	if top < 2 {
		return false, nil
	}
	var gs []int
	for g := top; g >= 2; g /= refineLevelRatio {
		gs = append(gs, g)
	}
	if gs[len(gs)-1] == 8 {
		gs = append(gs, 4)
	}

	// Block-minimum pyramids, built fine-to-coarse so each level's table
	// costs O(n·TB_child) instead of rescanning all n·(C+1) fine cells.
	// All levels share one pooled arena; every entry is written below, so
	// reuse needs no clearing.
	cmins := make([][]float64, len(gs))
	cminTotal := 0
	for _, g := range gs {
		cminTotal += n * (C/g + 1)
	}
	s.cminBuf = growFloats(s.cminBuf, cminTotal)
	cminOff := 0
	for i := len(gs) - 1; i >= 0; i-- {
		g := gs[i]
		TB := C/g + 1
		cm := s.cminBuf[cminOff : cminOff+n*TB]
		cminOff += n * TB
		if i == len(gs)-1 {
			for p := 0; p < n; p++ {
				row := costs[p]
				out := cm[p*TB : (p+1)*TB]
				for T := 0; T < TB; T++ {
					a := T * g
					b := a + g - 1
					if b > C {
						b = C
					}
					// Paired accumulators as in cellSumVal: min is exact, so
					// the split changes no bits, only the dependency chain.
					m, m2 := row[a], inf
					u := a + 1
					for ; u+1 <= b; u += 2 {
						if row[u] < m {
							m = row[u]
						}
						if row[u+1] < m2 {
							m2 = row[u+1]
						}
					}
					if u <= b && row[u] < m {
						m = row[u]
					}
					if m2 < m {
						m = m2
					}
					out[T] = m
				}
			}
		} else {
			r := g / gs[i+1]
			TBc := C/gs[i+1] + 1
			for p := 0; p < n; p++ {
				child := cmins[i+1][p*TBc : (p+1)*TBc]
				out := cm[p*TB : (p+1)*TB]
				for T := 0; T < TB; T++ {
					a := T * r
					b := a + r - 1
					if b > TBc-1 {
						b = TBc - 1
					}
					m := child[a]
					for j := a + 1; j <= b; j++ {
						if child[j] < m {
							m = child[j]
						}
					}
					out[T] = m
				}
			}
		}
		cmins[i] = cm
	}

	B := inf
	budget := refineWorkBudget(n, C)
	var lv *refineLevel
	var allowF, allowB []bool // nil on the coarsest level = everything
	var rngF, rngB [][2]int   // per-row surviving S ranges of the masks
	for i, g := range gs {
		if err := refineCtxCheck(ctx); err != nil {
			return false, err
		}
		// The banded upper solve pays a second candidate stream per cell,
		// so it runs only on the coarse levels (g ≥ 64), where bands are
		// small and a tighter B still has finer levels left to narrow; on
		// the finer levels polish has already pulled B close to optimal
		// and the extra stream would cost more than the band it saves.
		var cand []int
		var candObj float64
		lv, cand, candObj = refineComputeLevel(n, C, g, costs, cmins[i], allowF, allowB, rngF, rngB, i+1 < len(gs) && g >= 64, s, i&1)
		if cand != nil && candObj < B {
			// Polishing the representative allocation at fine granularity
			// tightens B well below the coarse-grid slack, which narrows
			// every band this level and below will cut.
			B = refinePolish(costs, cand, C, candObj)
		}
		if B == inf {
			// No feasible coarse allocation survived banding — hand the
			// instance to the exact path rather than reasoning further.
			path.refineFallback = true
			return false, nil
		}
		if i+1 == len(gs) {
			break
		}
		var work int64
		allowF, allowB, rngF, rngB, work = refineBand(lv, n, C, gs[i+1], B, s)
		if work > budget {
			// Pruning is not biting (adversarially flat instance);
			// finishing the descent would cost more than the exact solve.
			path.refineFallback = true
			return false, nil
		}
	}

	// Band the fine grid and solve the surviving cells exactly.
	spans, work := refineBandFine(lv, n, C, B)
	if work > budget {
		path.refineFallback = true
		return false, nil
	}
	if err := refineFineSolve(ctx, n, C, costs, spans, s, path); err != nil {
		return false, err
	}
	if s.rows[n][C] == inf {
		// Defensive: the soundness argument makes this unreachable, but a
		// fallback that recomputes exactly is strictly safer than trusting
		// an invariant at runtime.
		path.refineFallback = true
		return false, nil
	}
	path.refine = true
	return true, nil
}

func refineCtxCheck(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// refineComputeLevel builds one level's two-sided banded lower-bound DPs
// over the precomputed block minima, plus (on coarse levels) a banded
// upper solve over representative costs (costs[p][T·g], an achievable
// allocation). It returns the representative allocation and its objective
// — evaluated on the fine costs, in DP accumulation order — as an
// upper-bound candidate, or (nil, inf) when no upper solve ran or it found
// no feasible chain. Rows are written only on the banded S ranges
// (rngF/rngB, full grid on the coarsest level); the finite spans the next
// consumer may read are recorded in lv.dspan/lv.espan.
func refineComputeLevel(n, C, g int, costs [][]float64, cmin []float64, allowF, allowB []bool, rngF, rngB [][2]int, upper bool, s *scratch, parity int) (*refineLevel, []int, float64) {
	TB := C/g + 1

	lv := &refineLevel{g: g, TB: TB}
	lv.dlow = make([][]float64, n)
	lv.elow = make([][]float64, n)
	lv.dspan = make([][2]int, n)
	lv.espan = make([][2]int, n)
	// Ping-pong between the two pooled arenas: the previous level's rows
	// are still read (by the banding that produced rngF/rngB) after this
	// level starts writing.
	var flat []float64
	if parity == 0 {
		s.lvlBuf0 = growFloats(s.lvlBuf0, 2*n*TB)
		flat = s.lvlBuf0
	} else {
		s.lvlBuf1 = growFloats(s.lvlBuf1, 2*n*TB)
		flat = s.lvlBuf1
	}
	for p := 0; p < n; p++ {
		lv.dlow[p] = flat[p*TB : (p+1)*TB]
		lv.elow[p] = flat[(n+p)*TB : (n+p+1)*TB]
	}
	var dup, crep []float64
	var chUp []int32
	if upper {
		s.upBuf = growFloats(s.upBuf, 2*n*TB)
		dup = s.upBuf[:n*TB]
		// Representative costs gathered into contiguous rows once: the
		// upper DP's inner loop re-reads them per cell, and the strided
		// costs[p][T·g] access pattern is what it would otherwise pay for
		// every candidate.
		crep = s.upBuf[n*TB:]
		for p := 0; p < n; p++ {
			row := costs[p]
			cr := crep[p*TB : (p+1)*TB]
			for T := 0; T < TB; T++ {
				cr[T] = row[T*g]
			}
		}
		chUp = growInt32s(&s.chBuf, n*TB)
	}
	rowRange := func(rng [][2]int, p int) (int, int) {
		if rng == nil {
			return 0, TB - 1
		}
		return rng[p][0], rng[p][1]
	}

	// pMin/pMax track the finite span of the previous row: outside it every
	// predecessor is inf, so each cell's T scan covers only the surviving
	// band instead of all of [0, S] — this is what keeps the banded levels
	// O(band²) rather than O(band·TB).
	pMin, pMax := TB, -1
	lo, hi := rowRange(rngF, 0)
	for S := lo; S <= hi; S++ {
		lv.dlow[0][S] = inf
		if allowF == nil || allowF[S] {
			lv.dlow[0][S] = cmin[S]
			if upper {
				dup[S] = crep[S]
				chUp[S] = int32(S)
			}
			if S < pMin {
				pMin = S
			}
			pMax = S
		} else if upper {
			dup[S] = inf
		}
	}
	lv.dspan[0] = [2]int{pMin, pMax}
	for p := 1; p < n; p++ {
		dl, dlPrev := lv.dlow[p], lv.dlow[p-1]
		cm := cmin[p*TB : (p+1)*TB]
		var dupRow, dupPrev, crow []float64
		if upper {
			dupRow, dupPrev = dup[p*TB:(p+1)*TB], dup[(p-1)*TB:p*TB]
			crow = crep[p*TB : (p+1)*TB]
		}
		nMin, nMax := TB, -1
		lo, hi := rowRange(rngF, p)
		for S := lo; S <= hi; S++ {
			dl[S] = inf
			if upper {
				dupRow[S] = inf
			}
			if (allowF != nil && !allowF[p*TB+S]) || pMax < 0 {
				continue
			}
			t0 := S - pMax
			if t0 < 0 {
				t0 = 0
			}
			t1 := S - pMin
			if t1 > S {
				t1 = S
			}
			// inf predecessors need no guard: inf + finite = inf loses every
			// strict comparison, so skipping the check changes no result.
			bestL := inf
			if upper {
				bestU := inf
				bestT := int32(0)
				for T := t0; T <= t1; T++ {
					if cand := dlPrev[S-T] + cm[T]; cand < bestL {
						bestL = cand
					}
					if cand := dupPrev[S-T] + crow[T]; cand < bestU {
						bestU = cand
						bestT = int32(T)
					}
				}
				dupRow[S] = bestU
				chUp[p*TB+S] = bestT
			} else {
				// Paired accumulators as in cellSumVal: min is exact, so the
				// split changes no bits, only the dependency chain.
				bestL2 := inf
				T := t0
				for ; T+1 <= t1; T += 2 {
					if cand := dlPrev[S-T] + cm[T]; cand < bestL {
						bestL = cand
					}
					if cand := dlPrev[S-T-1] + cm[T+1]; cand < bestL2 {
						bestL2 = cand
					}
				}
				if T <= t1 {
					if cand := dlPrev[S-T] + cm[T]; cand < bestL {
						bestL = cand
					}
				}
				if bestL2 < bestL {
					bestL = bestL2
				}
			}
			dl[S] = bestL
			if bestL != inf {
				if S < nMin {
					nMin = S
				}
				nMax = S
			}
		}
		lv.dspan[p] = [2]int{nMin, nMax}
		pMin, pMax = nMin, nMax
	}

	pMin, pMax = TB, -1
	cm := cmin[(n-1)*TB : n*TB]
	lo, hi = rowRange(rngB, n-1)
	for S := lo; S <= hi; S++ {
		lv.elow[n-1][S] = inf
		if allowB == nil || allowB[(n-1)*TB+S] {
			lv.elow[n-1][S] = cm[S]
			if S < pMin {
				pMin = S
			}
			pMax = S
		}
	}
	lv.espan[n-1] = [2]int{pMin, pMax}
	for p := n - 2; p >= 0; p-- {
		el, elNext := lv.elow[p], lv.elow[p+1]
		cm = cmin[p*TB : (p+1)*TB]
		nMin, nMax := TB, -1
		lo, hi := rowRange(rngB, p)
		for S := lo; S <= hi; S++ {
			el[S] = inf
			if (allowB != nil && !allowB[p*TB+S]) || pMax < 0 {
				continue
			}
			t0 := S - pMax
			if t0 < 0 {
				t0 = 0
			}
			t1 := S - pMin
			if t1 > S {
				t1 = S
			}
			best, best2 := inf, inf
			T := t0
			for ; T+1 <= t1; T += 2 {
				if cand := elNext[S-T] + cm[T]; cand < best {
					best = cand
				}
				if cand := elNext[S-T-1] + cm[T+1]; cand < best2 {
					best2 = cand
				}
			}
			if T <= t1 {
				if cand := elNext[S-T] + cm[T]; cand < best {
					best = cand
				}
			}
			if best2 < best {
				best = best2
			}
			el[S] = best
			if best != inf {
				if S < nMin {
					nMin = S
				}
				nMax = S
			}
		}
		lv.espan[p] = [2]int{nMin, nMax}
		pMin, pMax = nMin, nMax
	}

	// Upper-bound candidate: reconstruct the representative allocation,
	// give the sub-block remainder to program 0, and accumulate the fine
	// costs in layer order — the same float64 reduction order the DP path
	// values use, so the result can never undercut the float64 optimum.
	if !upper {
		return lv, nil, inf
	}
	Su := C / g
	// The span check also keeps the read off unwritten arena cells when
	// Su falls outside the final row's banded range.
	if Su < lv.dspan[n-1][0] || Su > lv.dspan[n-1][1] || dup[(n-1)*TB+Su] == inf {
		return lv, nil, inf
	}
	alloc := make([]int, n)
	S := Su
	for p := n - 1; p >= 1; p-- {
		T := int(chUp[p*TB+S])
		alloc[p] = T * g
		S -= T
	}
	alloc[0] = S*g + (C - Su*g)
	obj := 0.0
	for p := 0; p < n; p++ {
		obj += costs[p][alloc[p]]
	}
	return lv, alloc, obj
}

// refinePolish hill-climbs an upper-bound allocation at fine granularity:
// pairwise moves in power-of-two step sizes, screened by incremental cost
// deltas and restarted at step 1 after every acceptance. The final
// objective is re-accumulated from scratch in layer order, so the returned
// bound remains an achievable float64 path value regardless of what the
// (cancellation-prone) screening deltas did; B only ever tightens.
func refinePolish(costs [][]float64, alloc []int, C int, B float64) float64 {
	n := len(alloc)
	a := append([]int(nil), alloc...)
	moves := 0
	for moved := true; moved && moves < 4096; {
		moved = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				ci, cj := costs[i], costs[j]
				for d := 1; moves < 4096 && d <= a[i] && a[j]+d <= C; {
					delta := (ci[a[i]-d] - ci[a[i]]) + (cj[a[j]+d] - cj[a[j]])
					if delta < 0 {
						a[i] -= d
						a[j] += d
						moved = true
						moves++
						d = 1
						continue
					}
					d <<= 1
				}
			}
		}
	}
	obj := 0.0
	for p := 0; p < n; p++ {
		obj += costs[p][a[p]]
	}
	if obj < B {
		return obj
	}
	return B
}

// growInt32s and growBools mirror growFloats for the refine scratch.
func growInt32s(b *[]int32, n int) []int32 {
	if cap(*b) < n {
		*b = make([]int32, n)
	}
	*b = (*b)[:n]
	return *b
}

func growBools(b *[]bool, n int) []bool {
	if cap(*b) < n {
		*b = make([]bool, n)
	}
	*b = (*b)[:n]
	return *b
}

// bandSweep fills out[S2] with the minimum of row over the block window a
// per-cell bound scan would cover when bounding the target interval
// [tLo(S2), tHi(S2)] — [S2·g2, min(C, S2·g2+wTarget)] for rev=false, or
// its reflection [max(0, C−S2·g2−wTarget), C−S2·g2] for rev=true — where
// the window over the granularity-g row is sHi = ⌊tHi/g⌋,
// sLo = max(0, ⌈(tLo−wRow)/g⌉). Only the S2 range whose window reaches the
// row's finite span [fMin, fMax] is computed and written; the range is
// returned (hi < lo when empty) and entries outside it are +inf by
// convention. S2 is iterated in the direction that makes both interval
// ends nondecreasing, so both window ends advance incrementally — a
// monotone-deque sweep, O(range) with no per-cell divisions.
func bandSweep(row []float64, fMin, fMax, TB2, g2, C, wTarget, wRow, g int, rev bool, dq []int32, out []float64) (int, int) {
	if fMax < fMin {
		return 0, -1
	}
	var s2lo, s2hi int
	if !rev {
		// tLo ≤ fMax·g + wRow and (uncapped) tHi ≥ fMin·g.
		s2hi = (fMax*g + wRow) / g2
		if a := fMin*g - wTarget; a > 0 {
			s2lo = (a + g2 - 1) / g2
		}
	} else {
		s2hi = (C - fMin*g) / g2
		if a := C - fMax*g - wRow - wTarget; a > 0 {
			s2lo = (a + g2 - 1) / g2
		}
	}
	if s2hi > TB2-1 {
		s2hi = TB2 - 1
	}
	if s2lo > s2hi {
		return 0, -1
	}
	head, tail := 0, 0
	sHi, sHiT := fMin-1, fMin*g // sHiT = (sHi+1)·g; blocks outside [fMin, fMax] are never pushed
	step := func(S2, tLo, tHi int) {
		for sHi < fMax && sHiT <= tHi {
			sHi++
			sHiT += g
			if v := row[sHi]; v != inf {
				for tail > head && row[dq[tail-1]] >= v {
					tail--
				}
				dq[tail] = int32(sHi)
				tail++
			}
		}
		for tail > head && int(dq[head])*g+wRow < tLo {
			head++
		}
		if tail > head {
			out[S2] = row[dq[head]]
		} else {
			out[S2] = inf
		}
	}
	if !rev {
		tLo := s2lo * g2
		tHi := tLo + wTarget
		if tHi > C {
			tHi = C
		}
		for S2 := s2lo; S2 <= s2hi; S2++ {
			if S2 > s2lo {
				tLo += g2
				if tHi += g2; tHi > C {
					tHi = C
				}
			}
			step(S2, tLo, tHi)
		}
	} else {
		tHi := C - s2hi*g2
		tLo := tHi - wTarget
		for S2 := s2hi; S2 >= s2lo; S2-- {
			if S2 < s2hi {
				tHi += g2
				tLo = tHi - wTarget
			}
			step(S2, tLo, tHi)
		}
	}
	return s2lo, s2hi
}

// refineBand computes the next level's forward and backward cell masks
// from the current level's bounds: cell (p, S2) survives iff some fine
// total it covers admits a completion whose two-sided lower bound stays
// within B·(1+refineMargin). Each mask row is two bandSweep passes — the
// own-side bound's windows ascend with S2, the opposite side's descend, so
// the latter is swept in reverse into a buffer — combined only over the
// intersection of their valid ranges; the surviving [min, max] per row is
// returned in rngF/rngB so the next level iterates nothing else. The work
// estimate is the banded level's projected scan cost —
// Σ_p widthF(p)·widthF(p−1) plus the backward mirror — so the caller can
// bail before paying for a band that is not narrow.
func refineBand(lv *refineLevel, n, C, g2 int, B float64, s *scratch) (allowF, allowB []bool, rngF, rngB [][2]int, work int64) {
	TB2 := C/g2 + 1
	limit := B * (1 + refineMargin)
	mask := growBools(&s.maskBuf, 2*n*TB2)
	allowF, allowB = mask[:n*TB2], mask[n*TB2:]
	rngF = make([][2]int, n)
	rngB = make([][2]int, n)
	g := lv.g
	buf := growFloats(s.sweepBuf, 2*TB2)
	s.sweepBuf = buf
	opp, own := buf[:TB2], buf[TB2:]
	dq := growInt32s(&s.dqBuf, lv.TB)
	// combine intersects the two sweeps' ranges, writes the mask row
	// unconditionally there (the pooled mask arena is never cleared), and
	// returns the surviving range. zeroHas flags the empty-prefix/suffix
	// convention: the opposite side is exactly zero from zeroLo up (target
	// interval reaches C), +inf below, with no opp buffer behind it.
	combine := func(row []bool, oLo, oHi, wLo, wHi int, zeroHas bool) (int, int) {
		lo, hi := wLo, wHi
		if oLo > lo {
			lo = oLo
		}
		if oHi < hi {
			hi = oHi
		}
		minS, maxS := TB2, -1
		for S2 := lo; S2 <= hi; S2++ {
			v := own[S2]
			if !zeroHas {
				v += opp[S2]
			}
			ok := v <= limit
			row[S2] = ok
			if ok {
				if S2 < minS {
					minS = S2
				}
				maxS = S2
			}
		}
		return minS, maxS
	}
	prevWF, prevWB := int64(1), int64(1)
	for p := 0; p < n; p++ {
		wT := (p + 1) * (g2 - 1)
		var oLo, oHi int
		zeroOpp := p == n-1
		if zeroOpp {
			// Empty suffix: zero cost exactly when tmax ≥ C.
			oLo, oHi = 0, TB2-1
			if thr := C - wT; thr > 0 {
				oLo = (thr + g2 - 1) / g2
			}
		} else {
			sp := lv.espan[p+1]
			oLo, oHi = bandSweep(lv.elow[p+1], sp[0], sp[1], TB2, g2, C, wT, (n-p-1)*(g-1), g, true, dq, opp)
		}
		sp := lv.dspan[p]
		wLo, wHi := bandSweep(lv.dlow[p], sp[0], sp[1], TB2, g2, C, wT, (p+1)*(g-1), g, false, dq, own)
		minF, maxF := combine(allowF[p*TB2:(p+1)*TB2], oLo, oHi, wLo, wHi, zeroOpp)
		rngF[p] = [2]int{minF, maxF}

		wT = (n - p) * (g2 - 1)
		zeroOpp = p == 0
		if zeroOpp {
			oLo, oHi = 0, TB2-1
			if thr := C - wT; thr > 0 {
				oLo = (thr + g2 - 1) / g2
			}
		} else {
			sp := lv.dspan[p-1]
			oLo, oHi = bandSweep(lv.dlow[p-1], sp[0], sp[1], TB2, g2, C, wT, p*(g-1), g, true, dq, opp)
		}
		sp = lv.espan[p]
		wLo, wHi = bandSweep(lv.elow[p], sp[0], sp[1], TB2, g2, C, wT, (n-p)*(g-1), g, false, dq, own)
		minB, maxB := combine(allowB[p*TB2:(p+1)*TB2], oLo, oHi, wLo, wHi, zeroOpp)
		rngB[p] = [2]int{minB, maxB}

		wF, wB := int64(maxF-minF+1), int64(maxB-minB+1)
		if wF < 0 {
			wF = 0
		}
		if wB < 0 {
			wB = 0
		}
		work += wF*prevWF + wB*prevWB
		prevWF, prevWB = wF, wB
	}
	return allowF, allowB, rngF, rngB, work
}

type rspan struct{ a, b int }

// refineBandFine computes the fine-grid band as per-layer spans of
// surviving t cells, plus the projected fine-pass scan cost
// Σ_p cells(p)·cells(p−1). The per-t coarse windows advance monotonically,
// so each layer costs two division-free sliding-window-minimum sweeps —
// one for the suffix bounds (indexed by remaining units m), one fused with
// the prefix bounds and the span emission.
func refineBandFine(lv *refineLevel, n, C int, B float64) ([][]rspan, int64) {
	limit := B * (1 + refineMargin)
	spans := make([][]rspan, n)
	suf := make([]float64, C+1)
	var work int64
	prevCells := int64(1)
	for p := 0; p < n; p++ {
		var cells int64
		if p == n-1 {
			// Empty suffix: only t == C can complete with zero units. The
			// prefix bound for t == C is the min of dlow[n−1] over the
			// window [⌈(C−n·(g−1))/g⌉, ⌊C/g⌋], clipped to the row's span.
			sp := lv.dspan[n-1]
			sHi := C / lv.g
			if sHi > sp[1] {
				sHi = sp[1]
			}
			sLo := sp[0]
			if a := C - n*(lv.g-1); a > 0 {
				if s := (a + lv.g - 1) / lv.g; s > sLo {
					sLo = s
				}
			}
			best := inf
			row := lv.dlow[n-1]
			for S := sLo; S <= sHi; S++ {
				if row[S] < best {
					best = row[S]
				}
			}
			if best <= limit {
				spans[p] = []rspan{{C, C}}
				cells = 1
			}
		} else {
			esp := lv.espan[p+1]
			sufLo, sufHi := slidingLB(lv.elow[p+1], esp[0], esp[1], (n-p-1)*(lv.g-1), lv.g, C, suf)
			if sufHi >= sufLo {
				dsp := lv.dspan[p]
				spans[p], cells = emitFineSpans(lv.dlow[p], dsp[0], dsp[1], suf, sufLo, sufHi, (p+1)*(lv.g-1), lv.g, C, limit)
			}
		}
		work += cells * prevCells
		prevCells = cells
	}
	return spans, work
}

// slidingLB fills out[x] = min(row[sLo(x)..sHi(x)]) over the coarse bound
// windows sHi(x) = ⌊x/g⌋, sLo(x) = max(0, ⌈(x−slack)/g⌉), for the x range
// whose window can reach the row's finite span [sMin, sMax], and returns
// that range [lo, hi] (hi < lo when the row is empty). Entries outside the
// range are not written; callers must treat them as +inf. Monotone-deque
// sweep, O(range) with no per-x divisions: both window ends advance by at
// most one block per step.
func slidingLB(row []float64, sMin, sMax, slack, g, C int, out []float64) (lo, hi int) {
	if sMax < sMin {
		return 0, -1
	}
	lo = sMin * g
	if lo > C {
		return 0, -1
	}
	hi = sMax*g + g - 1 + slack
	if hi > C {
		hi = C
	}
	dq := make([]int32, sMax-sMin+1)
	head, tail := 0, 0
	sLo := 0
	if a := lo - slack; a > 0 {
		sLo = (a + g - 1) / g
	}
	sLoX := slack + sLo*g + 1 // first x at which sLo increments
	x := lo
	for S := sMin; S <= sMax && x <= hi; S++ {
		if v := row[S]; v != inf {
			for tail > head && row[dq[tail-1]] >= v {
				tail--
			}
			dq[tail] = int32(S)
			tail++
		}
		xEnd := S*g + g - 1
		if xEnd > hi {
			xEnd = hi
		}
		for ; x <= xEnd; x++ {
			for x >= sLoX {
				sLo++
				sLoX += g
			}
			for tail > head && int(dq[head]) < sLo {
				head++
			}
			if tail > head {
				out[x] = row[dq[head]]
			} else {
				out[x] = inf
			}
		}
	}
	// Tail: x past the last block's own cells, still inside the slack reach.
	for ; x <= hi; x++ {
		for x >= sLoX {
			sLo++
			sLoX += g
		}
		for tail > head && int(dq[head]) < sLo {
			head++
		}
		if tail > head {
			out[x] = row[dq[head]]
		} else {
			out[x] = inf
		}
	}
	return lo, hi
}

// emitFineSpans runs the prefix sliding window over dlow and fuses the
// band test pref(t) + suf[C−t] ≤ limit, emitting maximal runs of
// surviving t. suf is only valid on [sufLo, sufHi]; outside it the suffix
// bound is +inf and the cell cannot survive.
func emitFineSpans(dlow []float64, sMin, sMax int, suf []float64, sufLo, sufHi, slack, g, C int, limit float64) ([]rspan, int64) {
	if sMax < sMin {
		return nil, 0
	}
	tLo := sMin * g
	if tLo > C {
		return nil, 0
	}
	tHi := sMax*g + g - 1 + slack
	if tHi > C {
		tHi = C
	}
	// Clip to t whose mirrored suffix index C−t lies in suf's valid range.
	if lo2 := C - sufHi; lo2 > tLo {
		tLo = lo2
	}
	if hi2 := C - sufLo; hi2 < tHi {
		tHi = hi2
	}
	if tLo > tHi {
		return nil, 0
	}
	var out []rspan
	var cells int64
	dq := make([]int32, sMax-sMin+1)
	head, tail := 0, 0
	sLo := 0
	if a := tLo - slack; a > 0 {
		sLo = (a + g - 1) / g
	}
	sLoX := slack + sLo*g + 1
	runStart := -1
	t := tLo
	emit := func(tEnd int) {
		for ; t <= tEnd; t++ {
			for t >= sLoX {
				sLo++
				sLoX += g
			}
			for tail > head && int(dq[head]) < sLo {
				head++
			}
			in := false
			if tail > head {
				in = dlow[dq[head]]+suf[C-t] <= limit
			}
			if in {
				if runStart < 0 {
					runStart = t
				}
				cells++
			} else if runStart >= 0 {
				out = append(out, rspan{runStart, t - 1})
				runStart = -1
			}
		}
	}
	for S := sMin; S <= sMax && t <= tHi; S++ {
		if v := dlow[S]; v != inf {
			for tail > head && dlow[dq[tail-1]] >= v {
				tail--
			}
			dq[tail] = int32(S)
			tail++
		}
		tEnd := S*g + g - 1
		if tEnd > tHi {
			tEnd = tHi
		}
		// Blocks below tLo's window start still need pushing before any
		// cell is emitted; emit() is a no-op until t's block arrives.
		if tEnd >= t {
			emit(tEnd)
		}
	}
	emit(tHi)
	if runStart >= 0 {
		out = append(out, rspan{runStart, tHi})
	}
	return out, cells
}

// refineFineSolve runs the exact DP over the surviving fine band: each
// layer's retained cells scan the previous layer's retained spans with the
// same unchecked gather kernel as the full solve, so every computed value
// is the exact float64 minimum over the surviving candidates.
func refineFineSolve(ctx context.Context, n, C int, costs [][]float64, spans [][]rspan, s *scratch, path *solvePath) error {
	for p := 0; p < n; p++ {
		if len(spans[p]) == 0 {
			// No surviving cells in some layer: mark the solve infeasible so
			// the caller's defensive check routes to the exact ladder.
			s.rows[n][C] = inf
			return nil
		}
	}
	prevSpans := []rspan{{0, 0}} // base row: only dp[0] is finite
	var cells int64
	for p := 0; p < n; p++ {
		if err := refineCtxCheck(ctx); err != nil {
			return err
		}
		loEx, hiEx := spans[p][0].a, spans[p][len(spans[p])-1].b
		prevLoEx, prevHiEx := prevSpans[0].a, prevSpans[len(prevSpans)-1].b
		// Only the costsRev entries the band scans — off+j for t in this
		// layer's extent, j in the previous layer's — are ever read; the
		// rest of the row stays stale.
		rLo := C - hiEx + prevLoEx
		if rLo < 0 {
			rLo = 0
		}
		rHi := C - loEx + prevHiEx
		if rHi > C {
			rHi = C
		}
		costsRev := s.costsRev[:C+1]
		row := costs[p]
		for i := rLo; i <= rHi; i++ {
			costsRev[i] = row[C-i]
		}
		// Pruned cells inside the extent must read as inf (the
		// reconstruction window scans across gaps); outside it the layer
		// meta keeps every reader away, so no fill is needed.
		next := s.rows[p+1]
		for t := loEx; t <= hiEx; t++ {
			next[t] = inf
		}
		prev := s.rows[p]
		for _, ts := range spans[p] {
			for t := ts.a; t <= ts.b; t++ {
				off := C - t
				best := inf
				for _, js := range prevSpans {
					a, b := js.a, js.b
					if a > t {
						break
					}
					if b > t {
						b = t
					}
					if v := cellSumVal(prev, costsRev, off, a, b); v < best {
						best = v
					}
				}
				next[t] = best
				cells++
			}
		}
		s.metas[p] = layerMeta{lo: 0, hi: C, prevLo: prevLoEx, prevHi: prevHiEx}
		prevSpans = spans[p]
	}
	path.cells += cells
	path.bandCells = cells
	return nil
}
