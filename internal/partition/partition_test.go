package partition

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"partitionshare/internal/mrc"
)

// mkCurve builds a curve from raw miss ratios.
func mkCurve(name string, accesses int64, mr ...float64) mrc.Curve {
	return mrc.Curve{Name: name, MR: mr, Accesses: accesses, AccessRate: 1}
}

// randCurve builds a random non-increasing miss-ratio curve with
// occasional cliffs, over C units.
func randCurve(rng *rand.Rand, name string, units int) mrc.Curve {
	mr := make([]float64, units+1)
	v := rng.Float64()*0.5 + 0.3
	for u := range mr {
		mr[u] = v
		switch {
		case rng.Float64() < 0.1: // cliff
			v *= rng.Float64() * 0.4
		case rng.Float64() < 0.5: // gentle decay
			v *= 0.85 + rng.Float64()*0.15
		}
	}
	return mrc.Curve{Name: name, MR: mr, Accesses: int64(rng.IntN(10000) + 1000), AccessRate: 1}
}

func TestOptimizeTrivialSingleProgram(t *testing.T) {
	c := mkCurve("a", 100, 1.0, 0.5, 0.2)
	sol, err := Optimize(Problem{Curves: []mrc.Curve{c}, Units: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Alloc[0] != 2 {
		t.Errorf("alloc = %v, want [2]", sol.Alloc)
	}
	if sol.Objective != 20 {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
	if sol.GroupMissRatio != 0.2 {
		t.Errorf("group mr = %v, want 0.2", sol.GroupMissRatio)
	}
}

func TestOptimizeKnownInstance(t *testing.T) {
	// Program a saturates after 1 unit; program b keeps improving.
	a := mkCurve("a", 1000, 1.0, 0.1, 0.1, 0.1, 0.1)
	b := mkCurve("b", 1000, 1.0, 0.8, 0.5, 0.2, 0.0)
	sol, err := Optimize(Problem{Curves: []mrc.Curve{a, b}, Units: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Alloc[0] != 1 || sol.Alloc[1] != 3 {
		t.Errorf("alloc = %v, want [1 3]", sol.Alloc)
	}
	if math.Abs(sol.Objective-(100+200)) > 1e-9 {
		t.Errorf("objective = %v, want 300", sol.Objective)
	}
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*31))
		units := rng.IntN(12) + 4
		n := rng.IntN(3) + 2
		curves := make([]mrc.Curve, n)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units)
		}
		pr := Problem{Curves: curves, Units: units}
		dp, err := Optimize(pr)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(pr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Objective-bf.Objective) > 1e-6 {
			t.Errorf("seed %d: DP %v vs brute force %v (alloc %v vs %v)",
				seed, dp.Objective, bf.Objective, dp.Alloc, bf.Alloc)
		}
		if dp.Alloc.Total() != units {
			t.Errorf("seed %d: allocation %v does not sum to %d", seed, dp.Alloc, units)
		}
	}
}

func TestOptimizeMatchesBruteForceWithBounds(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*77))
		units := rng.IntN(10) + 6
		n := 3
		curves := make([]mrc.Curve, n)
		minA := make([]int, n)
		maxA := make([]int, n)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units)
			minA[p] = rng.IntN(2)
			maxA[p] = minA[p] + rng.IntN(units)
		}
		pr := Problem{Curves: curves, Units: units, MinAlloc: minA, MaxAlloc: maxA}
		dp, errDP := Optimize(pr)
		bf, errBF := BruteForce(pr)
		if (errDP == nil) != (errBF == nil) {
			t.Fatalf("seed %d: feasibility disagreement: DP err %v, BF err %v", seed, errDP, errBF)
		}
		if errDP != nil {
			continue
		}
		if math.Abs(dp.Objective-bf.Objective) > 1e-6 {
			t.Errorf("seed %d: DP %v vs BF %v", seed, dp.Objective, bf.Objective)
		}
		for p := range dp.Alloc {
			if dp.Alloc[p] < minA[p] || dp.Alloc[p] > maxA[p] {
				t.Errorf("seed %d: alloc %v violates bounds [%v, %v]", seed, dp.Alloc, minA, maxA)
			}
		}
	}
}

func TestOptimizeMinimaxMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*13))
		units := rng.IntN(10) + 4
		curves := []mrc.Curve{randCurve(rng, "a", units), randCurve(rng, "b", units), randCurve(rng, "c", units)}
		pr := Problem{Curves: curves, Units: units, Combine: Minimax}
		dp, err := Optimize(pr)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(pr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Objective-bf.Objective) > 1e-6 {
			t.Errorf("seed %d: minimax DP %v vs BF %v", seed, dp.Objective, bf.Objective)
		}
	}
}

func TestOptimizeCustomCost(t *testing.T) {
	// QoS-style cost: program 0's misses are 10x as expensive.
	a := mkCurve("a", 1000, 1.0, 0.5, 0.0)
	b := mkCurve("b", 1000, 1.0, 0.5, 0.0)
	weight := []float64{10, 1}
	pr := Problem{
		Curves: []mrc.Curve{a, b},
		Units:  2,
		Cost:   func(p, u int) float64 { return weight[p] * float64(u) * -1.0 }, // contrived: reward units
	}
	sol, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Maximizing 10*u0 + u1 under u0+u1=2 gives all units to program 0.
	if sol.Alloc[0] != 2 || sol.Alloc[1] != 0 {
		t.Errorf("alloc = %v, want [2 0]", sol.Alloc)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	c := mkCurve("a", 10, 1, 0.5, 0.2)
	cases := []Problem{
		{Curves: []mrc.Curve{c, c}, Units: 2, MinAlloc: []int{2, 2}}, // lower bounds exceed C
		{Curves: []mrc.Curve{c, c}, Units: 2, MaxAlloc: []int{0, 1}}, // upper bounds below C
		{Curves: nil, Units: 2},                                                             // no programs
		{Curves: []mrc.Curve{c}, Units: 0},                                                  // no cache
		{Curves: []mrc.Curve{c}, Units: 2, MinAlloc: []int{1, 1}},                           // length mismatch
		{Curves: []mrc.Curve{c}, Units: 2, MaxAlloc: []int{}},                               // length mismatch
		{Curves: []mrc.Curve{c, c}, Units: 2, MinAlloc: []int{2, 1}, MaxAlloc: []int{1, 1}}, // lo > hi
	}
	for i, pr := range cases {
		if _, err := Optimize(pr); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEqualAllocation(t *testing.T) {
	got := EqualAllocation(4, 1024)
	for _, u := range got {
		if u != 256 {
			t.Fatalf("EqualAllocation(4,1024) = %v", got)
		}
	}
	got = EqualAllocation(3, 10)
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("EqualAllocation(3,10) = %v, want [4 3 3]", got)
	}
	if got.Total() != 10 {
		t.Fatal("total mismatch")
	}
}

func TestEqualAllocationPanics(t *testing.T) {
	for i, f := range []func(){
		func() { EqualAllocation(0, 4) },
		func() { EqualAllocation(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBaselineMinAlloc(t *testing.T) {
	// Baseline gives 2 units (mr 0.4). Smallest u with mr <= 0.4 is 2.
	c := mkCurve("a", 100, 1.0, 0.7, 0.4, 0.4, 0.1)
	mins := BaselineMinAlloc([]mrc.Curve{c}, Allocation{2}, 0)
	if mins[0] != 2 {
		t.Errorf("min alloc = %v, want [2]", mins)
	}
	// A flat curve can shed units: baseline 3 but mr equal at 0.
	flat := mkCurve("f", 100, 0.5, 0.5, 0.5, 0.5, 0.5)
	mins = BaselineMinAlloc([]mrc.Curve{flat}, Allocation{3}, 0)
	if mins[0] != 0 {
		t.Errorf("flat curve min alloc = %v, want [0]", mins)
	}
	// Tolerance loosens the bound: 0.41 is within 5% of 0.40.
	near := mkCurve("n", 100, 1.0, 0.41, 0.4, 0.4, 0.1)
	mins = BaselineMinAlloc([]mrc.Curve{near}, Allocation{2}, 0.05)
	if mins[0] != 1 {
		t.Errorf("tolerant min alloc = %v, want [1]", mins)
	}
	// The bound never exceeds the baseline itself.
	mins = BaselineMinAlloc([]mrc.Curve{c}, Allocation{1}, 0)
	if mins[0] > 1 {
		t.Errorf("min alloc %v exceeds baseline 1", mins)
	}
}

func TestBaselineMinAllocPanics(t *testing.T) {
	for i, f := range []func(){
		func() { BaselineMinAlloc([]mrc.Curve{mkCurve("a", 1, 1, 0)}, Allocation{0, 1}, 0) },
		func() { BaselineMinAlloc([]mrc.Curve{mkCurve("a", 1, 1, 0)}, Allocation{0}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestOptimizeWithBaselineNeverWorsens(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*7))
		units := 16
		curves := make([]mrc.Curve, 4)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units)
		}
		baseline := EqualAllocation(4, units)
		sol, err := OptimizeWithBaseline(curves, units, baseline)
		if err != nil {
			t.Fatal(err)
		}
		for p := range curves {
			base := curves[p].MissRatio(baseline[p]) * (1 + DefaultBaselineTolerance)
			if sol.MissRatios[p] > base+1e-12 {
				t.Errorf("seed %d: program %d worsened: %v > baseline %v", seed, p, sol.MissRatios[p], base)
			}
		}
		// And it is at least as good as the baseline overall.
		baseGroup := mrc.GroupMissRatio(curves, baseline)
		if sol.GroupMissRatio > baseGroup+1e-12 {
			t.Errorf("seed %d: baseline optimization worsened the group: %v > %v", seed, sol.GroupMissRatio, baseGroup)
		}
	}
}

func TestSTTWOptimalOnConvexCurves(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*3))
		units := rng.IntN(12) + 4
		curves := make([]mrc.Curve, 3)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units).ConvexMinorant()
		}
		sttw := STTW(curves, units)
		opt, err := Optimize(Problem{Curves: curves, Units: units})
		if err != nil {
			t.Fatal(err)
		}
		if sttw.Objective > opt.Objective+1e-6 {
			t.Errorf("seed %d: STTW %v worse than optimal %v on convex curves", seed, sttw.Objective, opt.Objective)
		}
	}
}

func TestSTTWFailsOnCliffCurves(t *testing.T) {
	// Program a has a working-set cliff: zero gain until all 4 units
	// arrive at once. Program b offers steady small gains. The myopic
	// greedy spends every unit on b and never reaches a's cliff; the DP
	// gives a its 4 units and wins outright.
	a := mkCurve("a", 2000, 1, 1, 1, 1, 0.01)
	b := mkCurve("b", 1000, 1.0, 0.7, 0.45, 0.25, 0.1)
	curves := []mrc.Curve{a, b}
	sttw := STTW(curves, 4)
	opt, err := Optimize(Problem{Curves: curves, Units: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sttw.Alloc[0] != 0 || sttw.Alloc[1] != 4 {
		t.Fatalf("STTW alloc = %v, want [0 4] (greedy drained by b)", sttw.Alloc)
	}
	if opt.Alloc[0] != 4 {
		t.Fatalf("optimal alloc = %v, want program a to get all 4 units", opt.Alloc)
	}
	if sttw.Objective <= opt.Objective {
		t.Errorf("expected STTW (%v) to lose to optimal (%v) on cliff curves", sttw.Objective, opt.Objective)
	}
}

func TestSTTWNeverBeatsOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^55))
		units := rng.IntN(16) + 4
		n := rng.IntN(4) + 2
		curves := make([]mrc.Curve, n)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units)
		}
		sttw := STTW(curves, units)
		opt, err := Optimize(Problem{Curves: curves, Units: units})
		if err != nil {
			return false
		}
		return opt.Objective <= sttw.Objective+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSTTWOnConvexHullBetween(t *testing.T) {
	// Hull-STTW should never beat the DP, and on cliff curves it should
	// not be worse than plain STTW.
	cliffA := mkCurve("a", 1000, 1, 1, 1, 0.05, 0.05)
	cliffB := mkCurve("b", 800, 1, 1, 0.6, 0.6, 0.1)
	curves := []mrc.Curve{cliffA, cliffB}
	units := 4
	plain := STTW(curves, units)
	hull := STTWOnConvexHull(curves, units)
	opt, err := Optimize(Problem{Curves: curves, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	if hull.Objective < opt.Objective-1e-9 {
		t.Errorf("hull STTW %v beats DP %v — impossible", hull.Objective, opt.Objective)
	}
	if hull.Objective > plain.Objective+1e-9 {
		t.Logf("note: hull STTW (%v) worse than plain (%v) on this instance", hull.Objective, plain.Objective)
	}
}

func TestSTTWPanics(t *testing.T) {
	for i, f := range []func(){
		func() { STTW(nil, 4) },
		func() { STTW([]mrc.Curve{mkCurve("a", 1, 1, 0)}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEvaluate(t *testing.T) {
	a := mkCurve("a", 1000, 1.0, 0.5, 0.2)
	b := mkCurve("b", 1000, 0.4, 0.3, 0.2)
	pr := Problem{Curves: []mrc.Curve{a, b}, Units: 2}
	sol, err := Evaluate(pr, Allocation{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-800) > 1e-9 {
		t.Errorf("objective = %v, want 800", sol.Objective)
	}
	if math.Abs(sol.GroupMissRatio-0.4) > 1e-9 {
		t.Errorf("group mr = %v, want 0.4", sol.GroupMissRatio)
	}
	if _, err := Evaluate(pr, Allocation{1}); err == nil {
		t.Error("expected error on mismatched allocation")
	}
}

func TestAllocationTotal(t *testing.T) {
	if (Allocation{1, 2, 3}).Total() != 6 {
		t.Fatal("Total broken")
	}
}

func BenchmarkOptimize4x1024(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	units := 1024
	curves := make([]mrc.Curve, 4)
	for p := range curves {
		curves[p] = randCurve(rng, "p", units)
	}
	pr := Problem{Curves: curves, Units: units}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTTW4x1024(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	units := 1024
	curves := make([]mrc.Curve, 4)
	for p := range curves {
		curves[p] = randCurve(rng, "p", units)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		STTW(curves, units)
	}
}

// Eq. 13-14: at the optimum over CONVEX curves, the weighted marginal
// miss-count reductions are equalized — no single-unit transfer between
// two programs can improve the objective. This is the classical STTW
// optimality condition, which the DP must satisfy a fortiori.
func TestOptimumEqualizesWeightedDerivatives(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*19))
		units := rng.IntN(30) + 10
		n := rng.IntN(3) + 2
		curves := make([]mrc.Curve, n)
		for p := range curves {
			curves[p] = randCurve(rng, "p", units).ConvexMinorant()
		}
		sol, err := Optimize(Problem{Curves: curves, Units: units})
		if err != nil {
			t.Fatal(err)
		}
		// One-unit transfer from program i to program j never helps.
		for i := 0; i < n; i++ {
			if sol.Alloc[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				loss := curves[i].MissCount(sol.Alloc[i]-1) - curves[i].MissCount(sol.Alloc[i])
				gain := curves[j].MissCount(sol.Alloc[j]) - curves[j].MissCount(sol.Alloc[j]+1)
				if gain > loss+1e-9 {
					t.Fatalf("seed %d: transferring a unit from %d to %d gains %v > loses %v",
						seed, i, j, gain, loss)
				}
			}
		}
	}
}

// Giving the cache more units never worsens the optimal objective
// (monotone resource property).
func TestOptimalMonotoneInCacheSize(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 17))
	units := 24
	curves := []mrc.Curve{
		randCurve(rng, "a", units),
		randCurve(rng, "b", units),
		randCurve(rng, "c", units),
	}
	prev := math.Inf(1)
	for c := 1; c <= units; c++ {
		sol, err := Optimize(Problem{Curves: curves, Units: c})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective > prev+1e-9 {
			t.Fatalf("objective rose from %v to %v at %d units", prev, sol.Objective, c)
		}
		prev = sol.Objective
	}
}

// Merging two programs' curves into a pseudo-program never beats
// optimizing them separately (subadditivity of the optimal partition).
func TestOptimalSubadditivity(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 23))
	units := 20
	a := randCurve(rng, "a", units)
	b := randCurve(rng, "b", units)
	c := randCurve(rng, "c", units)
	whole, err := Optimize(Problem{Curves: []mrc.Curve{a, b, c}, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	// Split the cache arbitrarily between {a} and {b,c} and optimize each
	// side: the best split equals the joint optimum.
	best := math.Inf(1)
	for split := 0; split <= units; split++ {
		lhs, err1 := Optimize(Problem{Curves: []mrc.Curve{a}, Units: max(split, 1)})
		rhs, err2 := Optimize(Problem{Curves: []mrc.Curve{b, c}, Units: max(units-split, 1)})
		if split == 0 {
			lhs.Objective = a.MissCount(0)
		} else if err1 != nil {
			t.Fatal(err1)
		}
		if units-split == 0 {
			rhs.Objective = b.MissCount(0) + c.MissCount(0)
		} else if err2 != nil {
			t.Fatal(err2)
		}
		if v := lhs.Objective + rhs.Objective; v < best {
			best = v
		}
	}
	if math.Abs(best-whole.Objective) > 1e-9 {
		t.Fatalf("best split %v != joint optimum %v", best, whole.Objective)
	}
}
