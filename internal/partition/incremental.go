package partition

import (
	"fmt"
	"math"

	"partitionshare/internal/mrc"
)

// Incremental maintains the optimal-partition DP as programs join and
// leave, reusing all unchanged layers. Adding a program costs one O(C²)
// layer; removing the most recently added program is O(1). This serves the
// scheduling scenario the paper motivates in §IV (choosing among many
// candidate co-run groups): a scheduler can push and pop candidates
// instead of re-running the full DP per group.
//
// Only Sum objectives over miss counts are supported; the zero value is
// not usable — construct with NewIncremental.
type Incremental struct {
	units  int
	layers []incLayer
}

type incLayer struct {
	curve  mrc.Curve
	dp     []float64 // dp[k]: best miss count for programs so far, exactly k units
	choice []int32
}

// NewIncremental returns an empty optimizer for a cache of units units.
func NewIncremental(units int) *Incremental {
	if units <= 0 {
		panic(fmt.Sprintf("partition: invalid cache size %d", units))
	}
	return &Incremental{units: units}
}

// Len returns the number of programs currently in the group.
func (inc *Incremental) Len() int { return len(inc.layers) }

// Push adds a program, extending the DP by one layer.
func (inc *Incremental) Push(c mrc.Curve) error {
	if err := c.Validate(); err != nil {
		return err
	}
	C := inc.units
	const inf = math.MaxFloat64
	layer := incLayer{
		curve:  c,
		dp:     make([]float64, C+1),
		choice: make([]int32, C+1),
	}
	var prev []float64
	if n := len(inc.layers); n > 0 {
		prev = inc.layers[n-1].dp
	}
	for t := 0; t <= C; t++ {
		best := inf
		bestU := int32(0)
		if prev == nil {
			// First program takes all t units (exact-sum semantics).
			best = c.MissCount(t)
			bestU = int32(t)
		} else {
			for u := 0; u <= t; u++ {
				if prev[t-u] == inf {
					continue
				}
				if cand := prev[t-u] + c.MissCount(u); cand < best {
					best = cand
					bestU = int32(u)
				}
			}
		}
		layer.dp[t] = best
		layer.choice[t] = bestU
	}
	inc.layers = append(inc.layers, layer)
	return nil
}

// Pop removes the most recently added program in O(1).
func (inc *Incremental) Pop() error {
	if len(inc.layers) == 0 {
		return fmt.Errorf("partition: Pop on empty group")
	}
	inc.layers = inc.layers[:len(inc.layers)-1]
	return nil
}

// Solve reconstructs the optimal allocation for the current group.
func (inc *Incremental) Solve() (Solution, error) {
	n := len(inc.layers)
	if n == 0 {
		return Solution{}, fmt.Errorf("partition: Solve on empty group")
	}
	curves := make([]mrc.Curve, n)
	for i, l := range inc.layers {
		curves[i] = l.curve
	}
	alloc := make(Allocation, n)
	k := inc.units
	for p := n - 1; p >= 0; p-- {
		u := int(inc.layers[p].choice[k])
		alloc[p] = u
		k -= u
	}
	if k != 0 {
		return Solution{}, fmt.Errorf("partition: reconstruction leftover %d units (internal)", k)
	}
	pr := Problem{Curves: curves, Units: inc.units}
	return pr.solution(alloc, inc.layers[n-1].dp[inc.units]), nil
}
