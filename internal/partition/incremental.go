package partition

import (
	"context"
	"errors"
	"fmt"
	"math"

	"partitionshare/internal/mrc"
)

// ErrWarmStartStale reports that an incremental warm start could not be
// reused for the requested group — the cached layers do not extend to
// the target curve list (a mid-prefix change, an invalid curve, an
// internally inconsistent DP). Callers test it with errors.Is and fall
// back to a cold solve; the differential tests assert the fallback is
// bit-exact vs ReferenceOptimize.
var ErrWarmStartStale = errors.New("partition: warm start stale")

// Incremental maintains the optimal-partition DP as programs join and
// leave, reusing all unchanged layers. Adding a program costs one O(C²)
// layer; removing the most recently added program is O(1). This serves the
// scheduling scenario the paper motivates in §IV (choosing among many
// candidate co-run groups): a scheduler can push and pop candidates
// instead of re-running the full DP per group.
//
// Only Sum objectives over miss counts are supported; the zero value is
// not usable — construct with NewIncremental.
type Incremental struct {
	units  int
	layers []incLayer
}

type incLayer struct {
	curve  mrc.Curve
	dp     []float64 // dp[k]: best miss count for programs so far, exactly k units
	choice []int32
}

// NewIncremental returns an empty optimizer for a cache of units units.
func NewIncremental(units int) *Incremental {
	if units <= 0 {
		panic(fmt.Sprintf("partition: invalid cache size %d", units))
	}
	return &Incremental{units: units}
}

// Len returns the number of programs currently in the group.
func (inc *Incremental) Len() int { return len(inc.layers) }

// Push adds a program, extending the DP by one layer.
func (inc *Incremental) Push(c mrc.Curve) error {
	if err := c.Validate(); err != nil {
		return err
	}
	C := inc.units
	const inf = math.MaxFloat64
	layer := incLayer{
		curve:  c,
		dp:     make([]float64, C+1),
		choice: make([]int32, C+1),
	}
	var prev []float64
	if n := len(inc.layers); n > 0 {
		prev = inc.layers[n-1].dp
	}
	for t := 0; t <= C; t++ {
		best := inf
		bestU := int32(0)
		if prev == nil {
			// First program takes all t units (exact-sum semantics).
			best = c.MissCount(t)
			bestU = int32(t)
		} else {
			// Candidates in descending u — the same order the batch DP
			// (ReferenceOptimize's ascending-k outer loop) visits them —
			// so strict < resolves exact-cost ties to the identical
			// allocation and warm-started plans stay bit-exact vs a cold
			// solve.
			for u := t; u >= 0; u-- {
				if prev[t-u] == inf {
					continue
				}
				if cand := prev[t-u] + c.MissCount(u); cand < best {
					best = cand
					bestU = int32(u)
				}
			}
		}
		layer.dp[t] = best
		layer.choice[t] = bestU
	}
	inc.layers = append(inc.layers, layer)
	return nil
}

// Pop removes the most recently added program in O(1).
func (inc *Incremental) Pop() error {
	if len(inc.layers) == 0 {
		return fmt.Errorf("partition: Pop on empty group")
	}
	inc.layers = inc.layers[:len(inc.layers)-1]
	return nil
}

// Units returns the cache size the optimizer was constructed for.
func (inc *Incremental) Units() int { return inc.units }

// Rebase warm-starts the DP onto the target curve list: the longest
// shared prefix of the current layers is kept, everything after it is
// popped, and the remaining targets are pushed. It returns how many
// layers were reused. A target the DP cannot extend to — an invalid
// curve mid-push, a cancelled context — fails with an error wrapping
// ErrWarmStartStale, and the optimizer is left empty so a later Rebase
// starts cold rather than on half-rebuilt state; callers fall back to a
// cold solve (Optimize), which the differential tests pin bit-exact.
// ctx (nil = never cancels) is polled between layer pushes, the same
// O(C²) granularity the batch DP polls at.
func (inc *Incremental) Rebase(ctx context.Context, curves []mrc.Curve) (reused int, err error) {
	keep := 0
	for keep < len(inc.layers) && keep < len(curves) && curveIdentical(inc.layers[keep].curve, curves[keep]) {
		keep++
	}
	inc.layers = inc.layers[:keep]
	for _, c := range curves[keep:] {
		if ctx != nil {
			select {
			case <-ctx.Done():
				inc.layers = inc.layers[:0]
				return 0, fmt.Errorf("%w: %v", ErrWarmStartStale, ctx.Err())
			default:
			}
		}
		if err := inc.Push(c); err != nil {
			inc.layers = inc.layers[:0]
			return 0, fmt.Errorf("%w: push %q: %v", ErrWarmStartStale, c.Name, err)
		}
	}
	return keep, nil
}

// curveIdentical reports bitwise equality of two curves — the identity a
// warm start needs: any difference in the miss-ratio column or access
// count changes DP cell values, so "close enough" reuse would silently
// break the bit-exactness contract.
func curveIdentical(a, b mrc.Curve) bool {
	if a.Name != b.Name || a.Accesses != b.Accesses || len(a.MR) != len(b.MR) {
		return false
	}
	if math.Float64bits(a.AccessRate) != math.Float64bits(b.AccessRate) {
		return false
	}
	for i := range a.MR {
		if math.Float64bits(a.MR[i]) != math.Float64bits(b.MR[i]) {
			return false
		}
	}
	return true
}

// Solve reconstructs the optimal allocation for the current group.
func (inc *Incremental) Solve() (Solution, error) {
	n := len(inc.layers)
	if n == 0 {
		return Solution{}, fmt.Errorf("partition: Solve on empty group")
	}
	curves := make([]mrc.Curve, n)
	for i, l := range inc.layers {
		curves[i] = l.curve
	}
	alloc := make(Allocation, n)
	k := inc.units
	for p := n - 1; p >= 0; p-- {
		u := int(inc.layers[p].choice[k])
		alloc[p] = u
		k -= u
	}
	if k != 0 {
		// An inconsistent reconstruction means the cached layers no longer
		// describe a coherent DP — stale state, not a caller mistake.
		return Solution{}, fmt.Errorf("%w: reconstruction leftover %d units", ErrWarmStartStale, k)
	}
	pr := Problem{Curves: curves, Units: inc.units}
	return pr.solution(alloc, inc.layers[n-1].dp[inc.units]), nil
}
