package partition

import (
	"context"
	"errors"
	"testing"
)

// A pre-cancelled context must stop the DP between layers and return
// context.Canceled instead of a solution.
func TestOptimizeParallelCancelled(t *testing.T) {
	pr := randProblem(42, 3, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeParallel(ctx, pr, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// A live context must not change the optimum: the cancellation checks sit
// between layers, outside the bit-exact kernel.
func TestOptimizeParallelWithContextBitExact(t *testing.T) {
	pr := randProblem(7, 4, 96)
	want, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeParallel(context.Background(), pr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.GroupMissRatio != want.GroupMissRatio {
		t.Fatalf("group miss ratio %v != %v", got.GroupMissRatio, want.GroupMissRatio)
	}
	for i := range want.Alloc {
		if got.Alloc[i] != want.Alloc[i] {
			t.Fatalf("alloc[%d] = %d, want %d", i, got.Alloc[i], want.Alloc[i])
		}
	}
}
