package partition

import (
	"container/heap"
	"fmt"

	"partitionshare/internal/mrc"
)

// EqualAllocation splits C units evenly among n programs, giving the
// remainder one unit each to the lowest-indexed programs (the paper's Equal
// scheme; its configuration has C divisible by n so the remainder is zero).
func EqualAllocation(n, units int) Allocation {
	if n <= 0 || units < 0 {
		panic(fmt.Sprintf("partition: invalid EqualAllocation(%d, %d)", n, units))
	}
	alloc := make(Allocation, n)
	base, rem := units/n, units%n
	for p := range alloc {
		alloc[p] = base
		if p < rem {
			alloc[p]++
		}
	}
	return alloc
}

// DefaultBaselineTolerance is the relative slack used by baseline
// optimization: a program counts as "no worse than its baseline" while its
// miss ratio stays within this fraction of the baseline miss ratio. Real
// miss-ratio curves have flat regions where cache can be shed exactly for
// free; measured or model-derived curves are strictly decreasing at
// floating-point granularity, so a literal zero tolerance would leave the
// optimizer no room at all. Half a percent is well inside the HOTL
// prediction error the paper accepts (§VII-C).
const DefaultBaselineTolerance = 0.005

// BaselineMinAlloc computes, for each program, the smallest allocation
// whose miss ratio does not exceed the program's miss ratio under the given
// baseline allocation (within the relative tolerance tol). Using these as
// DP lower bounds yields the paper's baseline optimization (§VI): group
// misses are minimized subject to no program doing (meaningfully) worse
// than its baseline. Curves must be non-increasing (repair with
// MonotoneRepair first).
func BaselineMinAlloc(curves []mrc.Curve, baseline Allocation, tol float64) []int {
	if len(curves) != len(baseline) {
		panic(fmt.Sprintf("partition: %d curves but %d baseline entries", len(curves), len(baseline)))
	}
	if tol < 0 {
		panic(fmt.Sprintf("partition: negative baseline tolerance %v", tol))
	}
	mins := make([]int, len(curves))
	for p, c := range curves {
		target := c.MissRatio(baseline[p]) * (1 + tol)
		u := 0
		for ; u <= c.Units(); u++ {
			if c.MissRatio(u) <= target+1e-15 {
				break
			}
		}
		if u > baseline[p] {
			// Monotone curves guarantee u <= baseline[p]; guard against
			// non-monotone input so the bound never exceeds the baseline
			// (which must stay feasible).
			u = baseline[p]
		}
		mins[p] = u
	}
	return mins
}

// OptimizeWithBaseline minimizes the group miss count subject to every
// program performing at least as well as under the baseline allocation,
// within DefaultBaselineTolerance.
func OptimizeWithBaseline(curves []mrc.Curve, units int, baseline Allocation) (Solution, error) {
	return OptimizeBaseline(Problem{Curves: curves, Units: units}, baseline)
}

// OptimizeBaseline is OptimizeWithBaseline over a full Problem: the
// baseline lower bounds (within DefaultBaselineTolerance) are derived from
// the problem's curves and installed as MinAlloc, while the problem's cost
// source — including a precomputed CostTable — is kept. Batch harnesses use
// it to share one miss-count table across every scheme of a group.
func OptimizeBaseline(pr Problem, baseline Allocation) (Solution, error) {
	pr.MinAlloc = BaselineMinAlloc(pr.Curves, baseline, DefaultBaselineTolerance)
	return Optimize(pr)
}

// sttwItem is a heap entry: the marginal miss-count reduction program p
// would get from one more unit.
type sttwItem struct {
	p    int
	gain float64
}

type sttwHeap []sttwItem

func (h sttwHeap) Len() int            { return len(h) }
func (h sttwHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h sttwHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sttwHeap) Push(x interface{}) { *h = append(*h, x.(sttwItem)) }
func (h *sttwHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// STTW computes the Stone–Thiebaut–Turek–Wolf partition: starting from
// empty allocations, it repeatedly grants one unit to the program with the
// highest marginal miss-count reduction, which equalizes the (access-
// weighted) miss-ratio derivatives — Eq. 13–14. The result minimizes group
// misses iff every curve is convex; on curves with working-set cliffs the
// greedy stalls before the cliff and can do much worse than Optimize
// (paper §VII-B, Figure 7).
func STTW(curves []mrc.Curve, units int) Solution {
	if len(curves) == 0 || units <= 0 {
		panic(fmt.Sprintf("partition: invalid STTW instance (%d programs, %d units)", len(curves), units))
	}
	alloc := make(Allocation, len(curves))
	h := make(sttwHeap, 0, len(curves))
	gain := func(p, u int) float64 {
		return curves[p].MissCount(u) - curves[p].MissCount(u+1)
	}
	for p := range curves {
		h = append(h, sttwItem{p, gain(p, 0)})
	}
	heap.Init(&h)
	for granted := 0; granted < units; granted++ {
		it := heap.Pop(&h).(sttwItem)
		alloc[it.p]++
		heap.Push(&h, sttwItem{it.p, gain(it.p, alloc[it.p])})
	}
	pr := Problem{Curves: curves, Units: units}
	sol, err := Evaluate(pr, alloc)
	if err != nil {
		panic(fmt.Sprintf("partition: STTW produced invalid allocation: %v", err))
	}
	return sol
}

// STTWOnConvexHull runs STTW on the convex minorants of the curves but
// evaluates the resulting allocation on the true curves. This is the
// classical remedy for non-convex curves (Suh et al. §IX) and an ablation
// point: it repairs some of STTW's losses but still cannot beat the DP.
func STTWOnConvexHull(curves []mrc.Curve, units int) Solution {
	hulls := make([]mrc.Curve, len(curves))
	for i, c := range curves {
		hulls[i] = c.ConvexMinorant()
	}
	hullSol := STTW(hulls, units)
	pr := Problem{Curves: curves, Units: units}
	sol, err := Evaluate(pr, hullSol.Alloc)
	if err != nil {
		panic(fmt.Sprintf("partition: hull STTW produced invalid allocation: %v", err))
	}
	return sol
}
