package errsentinel_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, errsentinel.Analyzer, "errs")
}
