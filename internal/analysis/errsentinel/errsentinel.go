// Package errsentinel enforces the PR 2 error-boundary contract: I/O
// and parsing boundaries fail with typed sentinels (profileio.ErrCorrupt,
// trace.ErrMalformed, reuse.ErrEmptyTrace, mrc.ErrNonMonotone, …) that
// callers test with errors.Is. Comparing errors with == / != or by
// string-matching err.Error() breaks the moment a boundary adds %w
// wrapping context — the comparison silently turns false and the typed
// failure is handled as an unknown one.
//
// Flagged everywhere, including tests (the hardening tests are exactly
// where wrapped sentinels must keep matching):
//
//   - err == sentinel / err != sentinel between two error-typed,
//     non-nil operands (nil checks stay idiomatic and are exempt)
//   - switch err { case ErrFoo: } over an error-typed tag
//   - err.Error() used with == / != or strings.Contains/HasPrefix/
//     HasSuffix/EqualFold
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: "errors must be compared with errors.Is against typed sentinels, " +
		"never with ==/!= or by string-matching err.Error()",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkStringMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkBinary(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isErrorStringCall(pass, b.X) || isErrorStringCall(pass, b.Y) {
		pass.Reportf(b.Pos(),
			"comparing err.Error() text breaks when the error is wrapped; use errors.Is against the typed sentinel")
		return
	}
	if errOperand(pass, b.X) && errOperand(pass, b.Y) {
		pass.Reportf(b.Pos(),
			"comparing errors with %s fails on %%w-wrapped sentinels; use errors.Is", b.Op)
	}
}

func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !errOperand(pass, s.Tag) {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if errOperand(pass, e) {
				pass.Reportf(e.Pos(),
					"switching on an error value compares with ==, which fails on %%w-wrapped sentinels; use errors.Is in an if/else chain")
				return
			}
		}
	}
}

// stringMatchFuncs are the strings-package predicates that indicate
// error-message matching when fed err.Error().
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true,
}

func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringMatchFuncs[sel.Sel.Name] {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if isErrorStringCall(pass, arg) {
			pass.Reportf(call.Pos(),
				"string-matching err.Error() with strings.%s is brittle; compare with errors.Is against the typed sentinel", sel.Sel.Name)
			return
		}
	}
}

// errOperand reports whether e is a non-nil expression of an error type.
func errOperand(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	return analysis.IsErrorType(tv.Type)
}

// isErrorStringCall reports whether e is a call x.Error() on an
// error-typed receiver.
func isErrorStringCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsErrorType(tv.Type)
}
