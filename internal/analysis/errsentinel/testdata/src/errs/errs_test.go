// Fixture: unlike the other analyzers, errsentinel applies to _test.go
// files too — hardening tests are exactly where wrapped sentinels must
// keep matching.
package errs

func testHelperCompares(err error) bool {
	return err == ErrCorrupt // want `comparing errors with == fails`
}
