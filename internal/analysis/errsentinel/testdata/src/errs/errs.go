// Fixture: sentinel comparisons must go through errors.Is; ==/!= and
// string matching break on %w-wrapped errors.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

var ErrCorrupt = errors.New("corrupt input")

func Parse(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("parse: %w", ErrCorrupt)
	}
	return nil
}

func badEquality(err error) bool {
	return err == ErrCorrupt // want `comparing errors with == fails`
}

func badInequality(err error) bool {
	return err != ErrCorrupt // want `comparing errors with != fails`
}

func badSwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrCorrupt: // want `switching on an error value`
		return "corrupt"
	}
	return "other"
}

func badStringEq(err error) bool {
	return err.Error() == "corrupt input" // want `err\.Error\(\) text`
}

func badStringMatch(err error) bool {
	return strings.Contains(err.Error(), "corrupt") // want `strings\.Contains is brittle`
}

func badStringPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "corrupt") // want `strings\.HasPrefix is brittle`
}

func goodIs(err error) bool {
	return errors.Is(err, ErrCorrupt) // ok: survives wrapping
}

func goodNilCheck(err error) bool {
	return err != nil // ok: nil checks are idiomatic
}

func goodNilSwitch(err error) bool {
	switch err {
	case nil:
		return true
	}
	return false
}

// goodStrings compares ordinary strings, not error text.
func goodStrings(a, b string) bool {
	return a == b && strings.Contains(a, b)
}
