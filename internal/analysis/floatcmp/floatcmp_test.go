package floatcmp_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "f", "internal/floats")
}
