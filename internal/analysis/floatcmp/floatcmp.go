// Package floatcmp enforces float-comparison hygiene on the pipeline's
// math: miss ratios, footprints, and composed curves are products of
// long floating-point reductions (HOTL Eq. 11, 15–16), so exact ==/!=
// on them encodes an accident of rounding, not a property. Comparisons
// must go through the approved epsilon helpers in internal/floats (or a
// local helper whose name declares the tolerance).
//
// Exempt, deliberately:
//
//   - _test.go files — the differential tests assert bit-exactness
//     against reference implementations on purpose
//   - internal/floats itself and functions named like epsilon helpers
//     (approxEqual, AlmostEqual, withinEps, …)
//   - comparisons where both operands are compile-time constants
//   - comparisons against the exact sentinel constants 0, 1, and
//     ±math.MaxFloat64 — all exactly representable and used as
//     "unset"/"disabled"/"unreached DP cell" markers that are assigned,
//     never computed (e.g. a sampling rate of exactly 1.0 meaning "no
//     sampling", or the partition kernels' inf cost cells)
//   - x != x — the idiomatic NaN probe
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"regexp"
	"strings"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "no ==/!= on float operands outside approved epsilon helpers; " +
		"use internal/floats.AlmostEqual or an explicit tolerance",
	Run: run,
}

// helperName matches function names that declare themselves tolerance
// helpers; float equality inside them is the implementation, not a bug.
var helperName = regexp.MustCompile(`(?i)(approx|almost|eps|within|toleran|close)`)

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/floats") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if helperName.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// Equality inside a nested helper-named literal is not a
				// thing; only FuncDecl names count as approved helpers.
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				if !floatOperand(pass, b.X) && !floatOperand(pass, b.Y) {
					return true
				}
				if exemptComparison(pass, b) {
					return true
				}
				pass.Reportf(b.Pos(),
					"exact %s on floating-point values compares rounding accidents; use internal/floats.AlmostEqual or an explicit epsilon", b.Op)
				return true
			})
		}
	}
	return nil
}

func floatOperand(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func exemptComparison(pass *analysis.Pass, b *ast.BinaryExpr) bool {
	xv := pass.TypesInfo.Types[b.X].Value
	yv := pass.TypesInfo.Types[b.Y].Value
	// Both constants: the comparison is decided at compile time.
	if xv != nil && yv != nil {
		return true
	}
	// Exact-sentinel checks against 0, 1, or ±MaxFloat64.
	if isSentinelConst(xv) || isSentinelConst(yv) {
		return true
	}
	// x != x / x == x: the NaN probe.
	if xid, ok := ast.Unparen(b.X).(*ast.Ident); ok {
		if yid, ok := ast.Unparen(b.Y).(*ast.Ident); ok {
			if xo := pass.TypesInfo.Uses[xid]; xo != nil && xo == pass.TypesInfo.Uses[yid] {
				return true
			}
		}
	}
	return false
}

func isSentinelConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, exact := constant.Float64Val(constant.ToFloat(v))
	return exact && (f == 0 || f == 1 || math.Abs(f) == math.MaxFloat64)
}
