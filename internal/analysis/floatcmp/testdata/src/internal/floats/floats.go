// Fixture: the internal/floats package is the approved home of the
// epsilon helpers; its own equality fast paths are exempt wholesale.
package floats

func Equal(a, b float64) bool {
	return a == b
}
