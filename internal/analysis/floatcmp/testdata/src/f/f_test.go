// Fixture: _test.go files are exempt — the differential tests assert
// bit-exactness against reference implementations on purpose.
package f

func bitExact(got, want float64) bool {
	return got == want
}
