// Fixture: exact float equality is flagged outside the approved
// helpers; 0/1 sentinels, NaN probes, constant folds, and integer
// comparisons are the allowed patterns.
package f

import "math"

const threshold = 0.5

func badEqual(a, b float64) bool {
	return a == b // want `exact == on floating-point values`
}

func badNotEqual(miss []float64) bool {
	return miss[0] != miss[1] // want `exact != on floating-point values`
}

func badConstOperand(missRatio float64) bool {
	return missRatio == threshold // want `exact == on floating-point values`
}

func badFloat32(a, b float32) bool {
	return a == b // want `exact == on floating-point values`
}

func zeroSentinel(x float64) bool {
	return x == 0 // ok: 0 is exactly representable, used as "unset"
}

func oneSentinel(rate float64) bool {
	return rate != 1.0 // ok: 1.0 is the "disabled" sentinel
}

func nanProbe(x float64) bool {
	return x != x // ok: the idiomatic NaN check
}

func constFold() bool {
	return 0.1+0.2 == 0.3 // ok: both operands are compile-time constants
}

const unreached = math.MaxFloat64

func sentinelCell(dp []float64) bool {
	return dp[0] == unreached // ok: exact "unreached DP cell" sentinel constant
}

func intsAreFine(a, b int) bool {
	return a == b // ok: integers compare exactly
}

// approxEqual is an epsilon helper by name: the equality inside is the
// fast path of the tolerance check, not a bug.
func approxEqual(a, b, eps float64) bool {
	return a == b || math.Abs(a-b) < eps
}

// WithinTolerance is likewise approved by name.
func WithinTolerance(a, b, tol float64) bool {
	return a == b || math.Abs(a-b) <= tol
}
