// Package sarif renders vetkit findings as a SARIF 2.1.0 document — the
// Static Analysis Results Interchange Format GitHub code scanning
// ingests for inline pull-request annotations. Only the small subset of
// the schema those annotations need is emitted: one run, one tool with
// its rule catalogue, and one result per diagnostic with a physical
// location relative to the SRCROOT uri base (the checkout root in CI).
//
// The output is deterministic — results are sorted by file, line,
// column, then rule — so a golden-file test can pin the exact shape.
package sarif

import (
	"encoding/json"
	"sort"
)

// A Rule describes one analyzer in the tool's rule catalogue.
type Rule struct {
	ID  string
	Doc string
}

// A Result is one diagnostic at a file position. File must be a
// forward-slash path relative to the repository root.
type Result struct {
	RuleID  string
	Message string
	File    string
	Line    int
	Column  int
}

// The sarif* types mirror the fragment of the SARIF 2.1.0 schema we
// emit; field order here is the serialization order.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Report renders rules and results as an indented SARIF 2.1.0 document
// ending in a newline. Rules are sorted by ID and results by position,
// so identical findings always produce byte-identical output.
func Report(toolName string, rules []Rule, results []Result) ([]byte, error) {
	sortedRules := append([]Rule(nil), rules...)
	sort.Slice(sortedRules, func(i, j int) bool { return sortedRules[i].ID < sortedRules[j].ID })
	sortedResults := append([]Result(nil), results...)
	sort.Slice(sortedResults, func(i, j int) bool {
		a, b := sortedResults[i], sortedResults[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.RuleID < b.RuleID
	})

	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  toolName,
			Rules: make([]sarifRule, 0, len(sortedRules)),
		}},
		// Empty slice, not nil: the schema requires "results" even when
		// the run is clean.
		Results: []sarifResult{},
	}
	for _, r := range sortedRules {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               r.ID,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	for _, r := range sortedResults {
		run.Results = append(run.Results, sarifResult{
			RuleID:  r.RuleID,
			Level:   "error",
			Message: sarifMessage{Text: r.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       r.File,
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: r.Line, StartColumn: r.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
