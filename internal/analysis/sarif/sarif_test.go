package sarif_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partitionshare/internal/analysis/sarif"
)

// TestGolden pins the exact SARIF 2.1.0 shape vetkit emits: schema and
// version strings, rule catalogue ordering, result ordering, SRCROOT
// uri base. Regenerate deliberately with UPDATE_GOLDEN=1 when the
// format changes on purpose.
func TestGolden(t *testing.T) {
	rules := []sarif.Rule{
		{ID: "obsname", Doc: "metric/span names must be registered constants"},
		{ID: "lockorder", Doc: "mutexes must be acquired in one consistent order"},
	}
	results := []sarif.Result{
		{
			RuleID:  "obsname",
			Message: `metric/span name must be a named constant, not an inline or computed string (obsname)`,
			File:    "internal/service/service.go",
			Line:    42,
			Column:  17,
		},
		{
			RuleID:  "lockorder",
			Message: "lock order inversion: service.Service.mu acquired while holding service.Store.mu (lockorder)",
			File:    "internal/service/http.go",
			Line:    7,
			Column:  2,
		},
	}
	got, err := sarif.Report("vetkit", rules, results)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("SARIF output diverged from golden %s:\n--- got ---\n%s", golden, got)
	}
}

// TestEmptyRunHasResultsArray guards the schema requirement that a
// clean run still carries an (empty) results array.
func TestEmptyRunHasResultsArray(t *testing.T) {
	got, err := sarif.Report("vetkit", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"results": []`; !strings.Contains(string(got), want) {
		t.Fatalf("clean report lacks %s:\n%s", want, got)
	}
}
