package ctxplumb_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/ctxplumb"
)

func TestCtxPlumb(t *testing.T) {
	analysistest.Run(t, ctxplumb.Analyzer, "ctx")
}
