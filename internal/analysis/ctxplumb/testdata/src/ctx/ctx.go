// Fixture: exported APIs that fan out goroutines must take a
// context.Context first; unexported helpers and context-first APIs are
// the allowed patterns.
package ctx

import (
	"context"
	"sync"
)

func Fanout(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `exported Fanout spawns goroutines`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// ContextSecond has a context, but not first — callers reading the
// signature cannot rely on the convention, so it is still flagged.
func ContextSecond(n int, ctx context.Context) {
	go func() { // want `exported ContextSecond spawns goroutines`
		<-ctx.Done()
	}()
}

type Pool struct{ stop chan struct{} }

func (p *Pool) Start() {
	go p.loop() // want `exported Start spawns goroutines`
}

func (p *Pool) loop() { <-p.stop }

// FanoutCtx is the contract-compliant shape.
func FanoutCtx(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ctx.Done()
		}()
	}
	wg.Wait()
}

// fanoutHelper is unexported: its exported callers own the contract.
func fanoutHelper(n int) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// Pure is exported but spawns nothing; no context needed.
func Pure(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
