// Fixture: _test.go files are exempt — test helpers spawn bare
// goroutines freely.
package ctx

import "sync"

func ParallelHelper(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}
