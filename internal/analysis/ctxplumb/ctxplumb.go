// Package ctxplumb enforces the PR 2 cancellation contract at API
// boundaries: an exported function or method that launches goroutines
// must accept a context.Context as its first parameter, so callers can
// drain the work it fans out. An exported API that spawns concurrency
// without a context is uncancellable from outside — the precise gap the
// PR 2 plumbing (experiment.Run, workload.ProfileAll,
// partition.OptimizeParallel, reuse.CollectParallel) closed.
//
// The goroutine may be spawned anywhere lexically inside the function,
// including nested function literals. Unexported helpers are exempt
// (their callers own the contract), as are _test.go files.
package ctxplumb

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc: "exported functions that spawn goroutines must take a " +
		"context.Context first parameter so callers can cancel the fan-out",
	Run:       run,
	FactTypes: []analysis.Fact{(*PlumbFact)(nil)},
}

// A PlumbFact lists this package's exported functions whose first
// parameter is a context.Context — the APIs whose concurrency a caller
// can cancel. Downstream, goroutinejoin treats `go dep.F(...)` as
// bounded when F appears here: the callee's fan-out drains when its
// context is cancelled, so the spawn is not fire-and-forget. Method
// entries are "Type.Method".
type PlumbFact struct {
	CtxFirst []string
}

func (*PlumbFact) AFact() {}

func run(pass *analysis.Pass) error {
	var ctxFirst []string
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if takesContextFirst(pass, fd) {
				ctxFirst = append(ctxFirst, factName(fd))
				continue
			}
			if pos, spawns := firstGoStmt(fd.Body); spawns {
				pass.Reportf(pos,
					"exported %s spawns goroutines but does not take a context.Context first parameter; the fan-out cannot be cancelled by callers", fd.Name.Name)
			}
		}
	}
	if len(ctxFirst) > 0 {
		sort.Strings(ctxFirst)
		if err := pass.ExportPackageFact(&PlumbFact{CtxFirst: ctxFirst}); err != nil {
			return err
		}
	}
	return nil
}

// factName is the package-relative name a function is recorded under in
// PlumbFact: "Func", or "Type.Method" with any pointer stripped.
func factName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip any type parameters (Type[T]) down to the base identifier.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// FuncFactName returns the PlumbFact entry name for a resolved function
// object, for importers matching call targets against the fact.
func FuncFactName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return obj.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// takesContextFirst reports whether fd's first parameter is a
// context.Context.
func takesContextFirst(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	if params.Len() == 0 {
		return false
	}
	named, ok := params.At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}

// firstGoStmt returns the position of the first go statement lexically
// inside body, if any.
func firstGoStmt(body *ast.BlockStmt) (pos token.Pos, spawns bool) {
	var found *ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			found = g
			return false
		}
		return true
	})
	if found == nil {
		return 0, false
	}
	return found.Pos(), true
}
