// Package ctxplumb enforces the PR 2 cancellation contract at API
// boundaries: an exported function or method that launches goroutines
// must accept a context.Context as its first parameter, so callers can
// drain the work it fans out. An exported API that spawns concurrency
// without a context is uncancellable from outside — the precise gap the
// PR 2 plumbing (experiment.Run, workload.ProfileAll,
// partition.OptimizeParallel, reuse.CollectParallel) closed.
//
// The goroutine may be spawned anywhere lexically inside the function,
// including nested function literals. Unexported helpers are exempt
// (their callers own the contract), as are _test.go files.
package ctxplumb

import (
	"go/ast"
	"go/token"
	"go/types"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc: "exported functions that spawn goroutines must take a " +
		"context.Context first parameter so callers can cancel the fan-out",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if takesContextFirst(pass, fd) {
				continue
			}
			if pos, spawns := firstGoStmt(fd.Body); spawns {
				pass.Reportf(pos,
					"exported %s spawns goroutines but does not take a context.Context first parameter; the fan-out cannot be cancelled by callers", fd.Name.Name)
			}
		}
	}
	return nil
}

// takesContextFirst reports whether fd's first parameter is a
// context.Context.
func takesContextFirst(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	if params.Len() == 0 {
		return false
	}
	named, ok := params.At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}

// firstGoStmt returns the position of the first go statement lexically
// inside body, if any.
func firstGoStmt(body *ast.BlockStmt) (pos token.Pos, spawns bool) {
	var found *ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			found = g
			return false
		}
		return true
	})
	if found == nil {
		return 0, false
	}
	return found.Pos(), true
}
