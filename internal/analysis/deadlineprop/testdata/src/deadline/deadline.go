// Fixture: a function that receives a context (or *http.Request) must
// not mint a fresh root with context.Background/TODO — that launders
// the caller's deadline away. The nil-guard and no-inbound-context
// shapes are the allowed patterns.
package deadline

import (
	"context"
	"net/http"
	"time"
)

func use(ctx context.Context) {}

// Launder replaces the inbound context with a fresh root.
func Launder(ctx context.Context) {
	use(context.Background()) // want `discards the inbound deadline`
}

// LaunderTODO does the same through TODO.
func LaunderTODO(ctx context.Context, n int) {
	c, cancel := context.WithTimeout(context.TODO(), time.Second) // want `discards the inbound deadline`
	defer cancel()
	use(c)
}

// Handler receives the request context through *http.Request and drops
// it on the floor.
func Handler(w http.ResponseWriter, r *http.Request) {
	use(context.Background()) // want `discards the inbound deadline`
}

// NilGuard is the sanctioned library-entry-point default for optional
// contexts.
func NilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	use(ctx)
}

// NilGuardFlipped spells the comparison the other way around.
func NilGuardFlipped(ctx context.Context) {
	if nil == ctx {
		ctx = context.Background()
	}
	use(ctx)
}

// Derive tightens the inbound deadline instead of replacing it.
func Derive(ctx context.Context) {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	use(c)
}

// OwnLifetime has no inbound context anywhere; it owns its lifetime
// (the Drain / shutdown shape), so a fresh root is correct.
func OwnLifetime() {
	use(context.Background())
}
