package deadlineprop_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/deadlineprop"
)

func TestDeadlineProp(t *testing.T) {
	analysistest.Run(t, deadlineprop.Analyzer, "deadline")
}
