// Package deadlineprop keeps inbound deadlines attached to the work
// they govern. A function that already receives a context.Context (or
// an *http.Request, whose Context carries the server's cancellation)
// must not mint a fresh root with context.Background() or context.TODO():
// doing so launders the caller's deadline away, so a partition solve
// kicked off by an admission-controlled HTTP request would keep burning
// CPU long after the client gave up — precisely what the PR 7 admission
// and drain machinery exists to prevent. Derive from the inbound
// context (context.WithTimeout(ctx, …)) instead.
//
// The one sanctioned Background use in such a function is the nil-guard
// that library entry points use for optional contexts:
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
// A Background/TODO call inside an `x == nil` / `x != nil` conditional
// on a context variable is accepted. Functions with no inbound context
// anywhere in their parameters (main, Drain, shutdown paths) are out of
// scope — they own their lifetime. _test.go files are exempt.
package deadlineprop

import (
	"go/ast"
	"go/types"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "deadlineprop",
	Doc: "functions receiving a ctx or *http.Request must not call " +
		"context.Background/TODO; a fresh root discards the inbound deadline",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasInboundCtx(pass, fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// hasInboundCtx reports whether fd receives a deadline from its caller:
// any parameter of type context.Context or *http.Request.
func hasInboundCtx(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if analysis.IsContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Request" && o.Pkg() != nil && o.Pkg().Path() == "net/http"
}

// checkBody flags Background/TODO calls outside nil-guard conditionals.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	// First collect the nil-guard regions: if-statements whose condition
	// compares a context value against nil.
	type span struct{ lo, hi int }
	var guards []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isCtxNilCond(pass, ifs.Cond) {
			return true
		}
		guards = append(guards, span{int(ifs.Body.Pos()), int(ifs.Body.End())})
		return true
	})
	inGuard := func(pos int) bool {
		for _, g := range guards {
			if pos >= g.lo && pos <= g.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		if inGuard(int(call.Pos())) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() inside %s discards the inbound deadline; derive from the request context instead",
			sel.Sel.Name, fd.Name.Name)
		return true
	})
}

// isCtxNilCond matches `ctx == nil` / `ctx != nil` (either operand
// order) where the non-nil side is a context.Context.
func isCtxNilCond(pass *analysis.Pass, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	ctxSide := be.X
	switch {
	case isNil(be.X):
		ctxSide = be.Y
	case isNil(be.Y):
		ctxSide = be.X
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[ctxSide]
	return ok && analysis.IsContextType(tv.Type)
}
