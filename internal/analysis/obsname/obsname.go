// Package obsname enforces the observability naming contract: every
// metric and trace-span name handed to the registry is a package-
// prefixed dotted.snake named constant, registered once. Inline string
// literals invite the failure mode metrics cannot recover from — a
// typo'd near-duplicate silently forks a counter, and dashboards sum
// neither half. Named constants make the name greppable and reusable;
// the package prefix makes collisions structurally impossible unless
// two packages really do claim the same name, which the cross-package
// fact check then flags.
//
// Checked call shapes (by name and receiver type, so fixtures can model
// them without importing internal/obs):
//
//	reg.Counter(name) / reg.Gauge(name) / reg.Histogram(name)   — receiver type named Registry
//	reg.ChildSet(prefix, cap)                                    — receiver type named Registry
//	child.Counter(suffix) / child.Histogram(suffix, bounds)      — receiver type named Child
//	StartTraceSpan(ctx, name, category)                          — any package-level function of that name
//
// The name argument must be a use of a named string constant, or
// `constPrefix + expr` where constPrefix is a named constant ending in
// "." (the dynamic-family form, e.g. httpErrors + code). The constant's
// value must match `pkg.part` / `pkg.part.part…` in lower snake, with
// the first segment equal to the defining package's name.
//
// Child-set names split the namespace across two call sites: the
// ChildSet prefix carries the package namespace (so it is validated
// like a dynamic-family prefix — dotted.snake ending in "."), while the
// per-child suffix completes the name after the runtime-supplied label
// and therefore must NOT repeat the package prefix — it is validated as
// dotted.snake without the namespace requirement, as a plain constant
// ("queue_wait_ns") or a constant prefix + expr ("requests." + route).
//
// Registry.StartSpan is exempt: its stage names label manifest Stages
// ("profile", "sweep"), a different namespace pinned by goldens. The
// internal/obs package itself and _test.go files are exempt.
package obsname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsname",
	Doc: "metric/span names must be package-prefixed dotted.snake named " +
		"constants registered once; inline or duplicate names fork counters",
	Run:       run,
	FactTypes: []analysis.Fact{(*MetricFact)(nil)},
}

// A MetricFact maps each metric/span name a package registers to the
// qualified identifier of the defining constant ("pkgpath.ConstName"),
// so importing packages can flag a second registration of the same name
// through a different constant while still allowing a shared constant
// to be used from anywhere.
type MetricFact struct {
	Names map[string]string
}

func (*MetricFact) AFact() {}

var (
	nameRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	prefixRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\.$`)
	// Child suffixes may be a single segment ("requests") — the child
	// set's prefix supplies the namespace dots.
	suffixRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)
)

type registration struct {
	obj  *types.Const
	desc string // "constName (file:line)" of the defining constant
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	registered := make(map[string]registration)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if arg, kind, ok := nameArg(pass, call); ok {
				checkName(pass, arg, kind, registered)
			}
			return true
		})
	}

	// Cross-package duplicates: a name some dependency already exported
	// under a *different* constant. Re-using the dependency's own
	// exported constant is the sanctioned sharing pattern and passes.
	depNames := make(map[string]string) // name → qualified defining const
	pass.AllPackageFacts(func(path string, fact analysis.Fact) {
		mf, ok := fact.(*MetricFact)
		if !ok {
			return
		}
		for name, qual := range mf.Names {
			if _, dup := depNames[name]; !dup {
				depNames[name] = qual
			}
		}
	})
	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		reg := registered[name]
		if prior, ok := depNames[name]; ok && prior != qualifiedConst(reg.obj) {
			pass.Reportf(reg.obj.Pos(),
				"metric name %q is already registered via %s; a name must be registered once — share that constant or rename", name, prior)
		}
	}

	if len(registered) > 0 {
		fact := &MetricFact{Names: make(map[string]string, len(registered))}
		for name, reg := range registered {
			fact.Names[name] = qualifiedConst(reg.obj)
		}
		if err := pass.ExportPackageFact(fact); err != nil {
			return err
		}
	}
	return nil
}

// qualifiedConst names a constant unambiguously across packages.
func qualifiedConst(obj *types.Const) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// nameKind says which half of the naming contract a call site's name
// argument must satisfy.
type nameKind int

const (
	kindFull        nameKind = iota // complete, package-prefixed series name
	kindSetPrefix                   // ChildSet family prefix: package-prefixed, ends "."
	kindChildSuffix                 // per-child suffix: dotted.snake, NO package prefix
)

// nameArg extracts the name argument of a checked registration call,
// or ok=false if call is not one.
func nameArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, nameKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Unqualified call: a package-local StartTraceSpan helper.
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "StartTraceSpan" && len(call.Args) >= 2 {
			return call.Args[1], kindFull, true
		}
		return nil, 0, false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
		if len(call.Args) < 1 {
			return nil, 0, false
		}
		// Receiver type names distinguish the two APIs, so fixtures can
		// model them without importing internal/obs.
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return nil, 0, false
		}
		if isNamedType(tv.Type, "Registry") {
			return call.Args[0], kindFull, true
		}
		if isNamedType(tv.Type, "Child") {
			return call.Args[0], kindChildSuffix, true
		}
	case "ChildSet":
		if len(call.Args) < 1 {
			return nil, 0, false
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isNamedType(tv.Type, "Registry") {
			return call.Args[0], kindSetPrefix, true
		}
	case "StartTraceSpan":
		if len(call.Args) >= 2 {
			return call.Args[1], kindFull, true
		}
	}
	return nil, 0, false
}

func isNamedType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// checkName validates one name argument and records full-name constant
// registrations for duplicate detection.
func checkName(pass *analysis.Pass, arg ast.Expr, kind nameKind, registered map[string]registration) {
	switch kind {
	case kindSetPrefix:
		checkSetPrefix(pass, arg)
		return
	case kindChildSuffix:
		checkChildSuffix(pass, arg)
		return
	}

	// Dynamic family: constPrefix + expr, validated on the prefix only.
	if be, ok := arg.(*ast.BinaryExpr); ok && be.Op == token.ADD {
		left := be.X
		for {
			inner, ok := left.(*ast.BinaryExpr)
			if !ok || inner.Op != token.ADD {
				break
			}
			left = inner.X
		}
		obj := constOf(pass, left)
		if obj == nil {
			pass.Reportf(arg.Pos(),
				"dynamic metric name must start with a named constant prefix ending in \".\"")
			return
		}
		val := constant.StringVal(obj.Val())
		if !prefixRE.MatchString(val) {
			pass.Reportf(arg.Pos(),
				"metric name prefix %q must be dotted.snake ending in \".\"", val)
			return
		}
		checkPkgPrefix(pass, arg, obj, val)
		return
	}

	obj := constOf(pass, arg)
	if obj == nil {
		pass.Reportf(arg.Pos(),
			"metric/span name must be a named constant, not an inline or computed string")
		return
	}
	val := constant.StringVal(obj.Val())
	if !nameRE.MatchString(val) {
		pass.Reportf(arg.Pos(),
			"metric name %q must be package-prefixed dotted.snake (e.g. %q)", val, "pkg.some_metric")
		return
	}
	checkPkgPrefix(pass, arg, obj, val)

	if prior, ok := registered[val]; ok {
		if prior.obj != obj {
			pass.Reportf(arg.Pos(),
				"metric name %q is also declared as %s; two constants with one name silently share a counter — use one constant", val, prior.desc)
		}
		return
	}
	pos := pass.Fset.Position(obj.Pos())
	registered[val] = registration{
		obj:  obj,
		desc: obj.Name() + " (" + pos.Filename + ":" + strconv.Itoa(pos.Line) + ")",
	}
}

// checkSetPrefix validates the family prefix handed to
// Registry.ChildSet: a named constant, dotted.snake ending in ".",
// carrying the defining package's namespace (the one place the child
// set's namespace is established).
func checkSetPrefix(pass *analysis.Pass, arg ast.Expr) {
	obj := constOf(pass, arg)
	if obj == nil {
		pass.Reportf(arg.Pos(),
			"child-set prefix must be a named constant ending in \".\", not an inline or computed string")
		return
	}
	val := constant.StringVal(obj.Val())
	if !prefixRE.MatchString(val) {
		pass.Reportf(arg.Pos(),
			"child-set prefix %q must be dotted.snake ending in \".\"", val)
		return
	}
	checkPkgPrefix(pass, arg, obj, val)
}

// checkChildSuffix validates the per-child metric suffix: the part of
// the series name after the runtime label. The set's prefix already
// carries the package namespace, so the suffix must NOT repeat it —
// otherwise it follows the same named-constant discipline, either a
// plain constant ("queue_wait_ns") or constant-prefix + expr
// ("requests." + route).
func checkChildSuffix(pass *analysis.Pass, arg ast.Expr) {
	if be, ok := arg.(*ast.BinaryExpr); ok && be.Op == token.ADD {
		left := be.X
		for {
			inner, ok := left.(*ast.BinaryExpr)
			if !ok || inner.Op != token.ADD {
				break
			}
			left = inner.X
		}
		obj := constOf(pass, left)
		if obj == nil {
			pass.Reportf(arg.Pos(),
				"dynamic child metric suffix must start with a named constant prefix ending in \".\"")
			return
		}
		val := constant.StringVal(obj.Val())
		if !prefixRE.MatchString(val) {
			pass.Reportf(arg.Pos(),
				"child metric suffix prefix %q must be dotted.snake ending in \".\"", val)
			return
		}
		checkNoPkgPrefix(pass, arg, obj, val)
		return
	}

	obj := constOf(pass, arg)
	if obj == nil {
		pass.Reportf(arg.Pos(),
			"child metric suffix must be a named constant, not an inline or computed string")
		return
	}
	val := constant.StringVal(obj.Val())
	if !suffixRE.MatchString(val) {
		pass.Reportf(arg.Pos(),
			"child metric suffix %q must be dotted.snake", val)
		return
	}
	checkNoPkgPrefix(pass, arg, obj, val)
}

// checkNoPkgPrefix is the dual of checkPkgPrefix: a child suffix that
// repeats the package namespace would render doubled series names
// (pkg.family.label.pkg.metric), so the first segment must differ from
// the defining package's name.
func checkNoPkgPrefix(pass *analysis.Pass, arg ast.Expr, obj *types.Const, val string) {
	pkg := obj.Pkg()
	if pkg == nil {
		pkg = pass.Pkg
	}
	have := pathBase(pkg.Path())
	seg, _, _ := strings.Cut(val, ".")
	if seg == have {
		pass.Reportf(arg.Pos(),
			"child metric suffix %q must not repeat the package namespace %q — the child set's prefix already carries it", val, have+".")
	}
}

// checkPkgPrefix requires the name's first segment to be the defining
// package's name, so every package owns a distinct namespace.
func checkPkgPrefix(pass *analysis.Pass, arg ast.Expr, obj *types.Const, val string) {
	pkg := obj.Pkg()
	if pkg == nil {
		pkg = pass.Pkg
	}
	want := pathBase(pkg.Path())
	seg, _, _ := strings.Cut(val, ".")
	if seg != want {
		pass.Reportf(arg.Pos(),
			"metric name %q must be prefixed with its package's namespace %q", val, want+".")
	}
}

// constOf resolves arg to a named string constant, or nil.
func constOf(pass *analysis.Pass, arg ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || obj.Val() == nil || obj.Val().Kind() != constant.String {
		return nil
	}
	return obj
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
