// Fixture: metric/span names must be package-prefixed dotted.snake
// named constants registered once. The Registry type and StartTraceSpan
// function model internal/obs's surface by shape (the source importer
// cannot load other fixture packages). The inline-literal and legacy
// underscore cases reproduce real pre-PR8 violations: internal/service
// passed "service.plan.requests" inline, and internal/partition used
// undotted names like "partition_solves_total".
package obsnames

import "context"

type Registry struct{}

type Metric struct{}

func (r *Registry) Counter(name string) *Metric   { return nil }
func (r *Registry) Gauge(name string) *Metric     { return nil }
func (r *Registry) Histogram(name string) *Metric { return nil }

// ChildSet/Child model the bounded per-label family API: the set's
// prefix carries the package namespace, each child completes series as
// prefix + label + "." + suffix.
type ChildSet struct{}

type Child struct{}

func (r *Registry) ChildSet(prefix string, capacity int) *ChildSet { return nil }
func (cs *ChildSet) Child(label string) *Child                     { return nil }
func (c *Child) Counter(suffix string) *Metric                     { return nil }
func (c *Child) Histogram(suffix string, bounds []int64) *Metric   { return nil }

func StartTraceSpan(ctx context.Context, name, category string) func() { return func() {} }

const (
	mSolves     = "obsnames.solves"
	mSolvesDup  = "obsnames.solves" // second constant, same name: flagged at use
	mBadCase    = "ObsNames.Bad"
	mOtherNS    = "other.solves"
	mLegacy     = "obsnames_solves_total" // undotted legacy shape (pre-PR8 partition counters)
	mHTTPPrefix = "obsnames.http.errors."
	mBadPrefix  = "obsnames.http_errors" // prefix must end in "."
	sSpan       = "obsnames.profile"

	// Child-set constants: the set prefix is package-prefixed; the
	// per-child suffixes deliberately are not (the prefix carries the
	// namespace once).
	mTenantPrefix    = "obsnames.tenant."
	mTenantOtherNS   = "other.tenant."
	suffixRequests   = "requests"
	suffixReqPrefix  = "requests."
	suffixLatency    = "latency_ns.plan"
	suffixBadCase    = "Requests"
	suffixBadPrefix  = "requests_by"       // dynamic form must end in "."
	suffixPkgDoubled = "obsnames.requests" // would render obsnames.tenant.X.obsnames.requests

	// Plan-lifecycle shapes (PR10): an epoch gauge, a churn counter, a
	// per-tenant delta child set, and the flagged variants of each — a
	// delta prefix missing its trailing dot and an epoch gauge named in
	// the legacy underscore style.
	mPlanEpoch       = "obsnames.plan.epoch"
	mPlanUnitsMoved  = "obsnames.plan.units_moved"
	mPlanDeltaPrefix = "obsnames.plan.delta."
	suffixDeltaUnits = "moved_units"
	mPlanDeltaNoDot  = "obsnames.plan.delta"       // prefix must end in "."
	mPlanEpochLegacy = "obsnames_plan_epoch_total" // undotted legacy shape
)

var reg Registry

func Good(ctx context.Context, code string) {
	reg.Counter(mSolves)
	reg.Counter(mSolves) // same constant again: one registration, fine
	reg.Histogram(mHTTPPrefix + code)
	done := StartTraceSpan(ctx, sSpan, "pipeline")
	done()
}

func GoodChildren(label, route string) {
	child := reg.ChildSet(mTenantPrefix, 64).Child(label)
	child.Counter(suffixRequests)
	child.Counter(suffixReqPrefix + route) // dynamic suffix: const prefix + expr
	child.Histogram(suffixLatency, nil)
}

func GoodPlanLifecycle(tenant string) {
	reg.Gauge(mPlanEpoch)
	reg.Counter(mPlanUnitsMoved)
	reg.ChildSet(mPlanDeltaPrefix, 64).Child(tenant).Counter(suffixDeltaUnits)
}

func BadPlanLifecycle(tenant string) {
	reg.Counter(mPlanEpochLegacy)     // want `dotted.snake`
	reg.ChildSet(mPlanDeltaNoDot, 64) // want `ending in`
	reg.ChildSet("other.plan.", 64)   // want `named constant`
}

func Bad(ctx context.Context, code string) {
	reg.Counter("obsnames.plan.requests")        // want `named constant`
	reg.Gauge(mBadCase)                          // want `dotted.snake`
	reg.Counter(mLegacy)                         // want `dotted.snake`
	reg.Histogram(mOtherNS)                      // want `namespace`
	reg.Counter(mSolvesDup)                      // want `use one constant`
	reg.Counter(mBadPrefix + code)               // want `ending in`
	StartTraceSpan(ctx, "obsnames.span", "line") // want `named constant`
}

func BadChildren(label, route string) {
	reg.ChildSet("obsnames.tenant.", 64) // want `named constant`
	reg.ChildSet(mBadPrefix, 64)         // want `ending in`
	reg.ChildSet(mTenantOtherNS, 64)     // want `namespace`
	child := reg.ChildSet(mTenantPrefix, 64).Child(label)
	child.Counter("requests")              // want `named constant`
	child.Counter(suffixBadCase)           // want `dotted.snake`
	child.Counter(suffixBadPrefix + route) // want `ending in`
	child.Counter(suffixPkgDoubled)        // want `must not repeat the package namespace`
	child.Histogram(suffixBadCase, nil)    // want `dotted.snake`
}

// Suppressed carries a name through a parameter — not provable as a
// constant, so it needs an explained suppression (the simSpan shape in
// internal/cachesim).
func Suppressed(name string) {
	reg.Counter(name) //vetkit:ignore(obsname): name is forwarded from per-simulator constants
}
