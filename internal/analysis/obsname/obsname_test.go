package obsname_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/obsname"
)

func TestObsName(t *testing.T) {
	analysistest.Run(t, obsname.Analyzer, "obsnames")
}
