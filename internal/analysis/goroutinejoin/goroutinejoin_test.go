package goroutinejoin_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/goroutinejoin"
)

func TestGoroutineJoin(t *testing.T) {
	analysistest.Run(t, goroutinejoin.Analyzer, "spawn")
}
