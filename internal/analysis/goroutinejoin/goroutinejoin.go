// Package goroutinejoin rejects fire-and-forget goroutines: every `go`
// statement in production code must be joined or bounded, so Stop/Drain
// paths can actually wait for the work and tests do not leak goroutines
// across cases. A spawn is accepted when its body (or its callee's
// body, one call deep within the package) shows one of the repository's
// sanctioned lifecycle patterns:
//
//   - WaitGroup join: the goroutine calls wg.Done() (the spawner owns a
//     matching Wait), as in the experiment and reuse worker pools;
//   - context bound: the goroutine consults ctx.Done(), as in the
//     service reoptimization loop and the obs debug-server watcher;
//   - close-join: the goroutine closes a channel it does not own, the
//     signal the spawner receives on, as in StartServer's close(srv.err);
//   - channel drain: the goroutine ranges over, or selects/receives
//     from, a channel, so closing the channel releases it, as in the DP
//     pool's layer workers and the checkpointer's flush loop.
//
// For a spawned call into another module package the analyzer accepts a
// context.Context argument at the call site, or — via the PlumbFact
// ctxplumb exports — a callee recorded as a context-first API (the fact
// covers call shapes where no argument's static type is context.Context,
// e.g. a nil ctx forwarded through an any-typed value). _test.go files
// are exempt.
package goroutinejoin

import (
	"go/ast"
	"go/types"

	"partitionshare/internal/analysis"
	"partitionshare/internal/analysis/ctxplumb"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroutinejoin",
	Doc: "every spawned goroutine must be joined (WaitGroup, close-join) or " +
		"bounded (ctx.Done, channel drain); fire-and-forget goroutines leak",
	Run:       run,
	FactTypes: []analysis.Fact{(*ctxplumb.PlumbFact)(nil)},
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok && !c.bounded(g.Call, 0) {
				pass.Reportf(g.Pos(),
					"goroutine is neither joined (WaitGroup, close-join) nor bounded (ctx.Done, channel drain); it cannot be waited for or stopped")
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

// bounded reports whether the spawned call is joined or bounded. depth
// limits recursion through same-package callees to one level: the
// repository's patterns put the lifecycle evidence either in the spawn
// literal or directly in the worker function it names.
func (c *checker) bounded(call *ast.CallExpr, depth int) bool {
	// A context argument at the spawn site means the callee is
	// cancellable (ctxplumb enforces that for exported spawners).
	for _, a := range call.Args {
		if tv, ok := c.pass.TypesInfo.Types[a]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return c.bodyBounded(fun.Body, depth)
	case *ast.Ident, *ast.SelectorExpr:
		obj := calleeObj(c.pass, call)
		if obj == nil {
			return false
		}
		if fd, ok := c.decls[obj]; ok {
			return depth < 1 && c.bodyBounded(fd.Body, depth+1)
		}
		// Cross-package spawn: trust the dependency's ctxplumb fact.
		if pkg := obj.Pkg(); pkg != nil && pkg != c.pass.Pkg {
			var fact ctxplumb.PlumbFact
			if c.pass.ImportPackageFact(pkg.Path(), &fact) {
				want := ctxplumb.FuncFactName(obj)
				for _, name := range fact.CtxFirst {
					if name == want {
						return true
					}
				}
			}
			// Without a fact, fall back to the signature the importer
			// loaded: a context-first callee is cancellable by design.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Params().Len() > 0 {
				return analysis.IsContextType(sig.Params().At(0).Type())
			}
		}
	}
	return false
}

// bodyBounded scans a goroutine body for the sanctioned lifecycle
// patterns. Nested function literals count: the evidence may sit inside
// a defer'd literal.
func (c *checker) bodyBounded(body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				// close(ch): the goroutine signals completion by closing
				// a join channel the spawner receives on.
				if fun.Name == "close" && isBuiltin(c.pass, fun) {
					found = true
					return false
				}
				// A worker function named directly inside the body.
				if depth < 1 {
					if obj, ok := c.pass.TypesInfo.Uses[fun].(*types.Func); ok {
						if fd, ok := c.decls[obj]; ok && c.bodyBounded(fd.Body, depth+1) {
							found = true
							return false
						}
					}
				}
			case *ast.SelectorExpr:
				if c.isJoinCall(fun) {
					found = true
					return false
				}
				if depth < 1 {
					if obj, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
						if fd, ok := c.decls[obj]; ok && c.bodyBounded(fd.Body, depth+1) {
							found = true
							return false
						}
					}
				}
			}
		case *ast.RangeStmt:
			// for range ch — the worker drains until the spawner closes
			// the channel.
			if tv, ok := c.pass.TypesInfo.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// A receive: the goroutine waits on a stop/done channel the
			// spawner controls (ctx.Done() receives also land here).
			if e.Op.String() == "<-" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isJoinCall recognizes wg.Done() on a sync.WaitGroup and ctx.Done()
// on a context.Context.
func (c *checker) isJoinCall(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	if analysis.IsContextType(tv.Type) {
		return true
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "WaitGroup" && o.Pkg() != nil && o.Pkg().Path() == "sync"
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}
