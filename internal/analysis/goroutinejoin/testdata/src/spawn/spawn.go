// Fixture: every spawned goroutine must be joined (WaitGroup,
// close-join) or bounded (ctx.Done, channel drain). The fire-and-forget
// spawns are the flagged patterns.
package spawn

import (
	"context"
	"sync"
)

func work() {}

// WaitGroupJoin is the worker-pool shape: each goroutine signals a
// WaitGroup the spawner waits on.
func WaitGroupJoin(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// CtxBound is the watcher shape: the goroutine blocks on ctx.Done.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// CloseJoin signals completion by closing a channel the spawner
// receives on (the StartServer shape).
func CloseJoin() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// Pool spawns a named worker that drains a channel; closing the channel
// releases it (the DP pool shape).
type Pool struct{ jobs chan int }

func (p *Pool) Start(ctx context.Context) {
	go p.worker()
}

func (p *Pool) worker() {
	for j := range p.jobs {
		_ = j
	}
}

// SpawnWithCtx passes the context to the spawned callee, which owns its
// own bounding (the reoptLoop shape).
func SpawnWithCtx(ctx context.Context) {
	go handle(ctx)
}

func handle(ctx context.Context) { <-ctx.Done() }

// Leak is fire-and-forget: nothing joins or bounds the goroutine.
func Leak(ctx context.Context) {
	go func() { // want `neither joined`
		work()
	}()
}

// LeakNamed spawns a callee with no lifecycle evidence either.
func LeakNamed(ctx context.Context) {
	go work() // want `neither joined`
}
