package analysis_test

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"partitionshare/internal/analysis"
	"partitionshare/internal/analysis/lockorder"
	"partitionshare/internal/analysis/obsname"
)

// testImporter resolves the fake module packages built earlier in a
// test before falling back to the source importer for the stdlib.
type testImporter struct {
	deps     map[string]*types.Package
	fallback types.Importer
}

func (i testImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.deps[path]; ok {
		return p, nil
	}
	return i.fallback.Import(path)
}

// check runs analyzers over one in-memory source file.
func check(t *testing.T, path, src string, analyzers []*analysis.Analyzer, opts *analysis.Options, deps map[string]*types.Package) (*analysis.Result, *types.Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	conf := &types.Config{
		Importer: testImporter{deps: deps, fallback: importer.ForCompiler(fset, "source", nil)},
	}
	res, pkg, err := analysis.Check(conf, fset, path, []*ast.File{f}, analyzers, opts)
	if err != nil {
		t.Fatalf("check %s: %v", path, err)
	}
	return res, pkg, fset
}

// callFlagger reports every call to a function literally named "bad".
var callFlagger = &analysis.Analyzer{
	Name: "callflag",
	Doc:  "test analyzer: flags calls to bad()",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressions(t *testing.T) {
	src := `package p

func bad() {}

func f() {
	bad() //vetkit:ignore(callflag): known noisy in this test
	bad()
	//vetkit:ignore(callflag): standalone form covers the next line
	bad()
	//vetkit:ignore(callflag):
	bad()
	//vetkit:ignore(nosuch): names a missing analyzer
	bad()
}
`
	res, _, fset := check(t, "p", src, []*analysis.Analyzer{callFlagger},
		&analysis.Options{KnownAnalyzers: []string{"callflag"}}, nil)

	if len(res.Suppressed) != 2 {
		t.Fatalf("suppressed = %d, want 2: %+v", len(res.Suppressed), res.Suppressed)
	}
	for _, s := range res.Suppressed {
		if s.Analyzer != "callflag" || s.Reason == "" {
			t.Errorf("bad suppression record: %+v", s)
		}
	}

	// Surviving: the bare bad() (line 7), the two ignores that do not
	// suppress (empty reason line 10 → its bad() line 11; unknown
	// analyzer line 12 → its bad() line 13), plus the two vetkit
	// self-diagnostics.
	var byLine []string
	for _, d := range res.Diags {
		byLine = append(byLine, fmt.Sprintf("%d:%s", fset.Position(d.Pos).Line, d.Analyzer))
	}
	want := []string{"7:callflag", "10:vetkit", "11:callflag", "12:vetkit", "13:callflag"}
	if strings.Join(byLine, " ") != strings.Join(want, " ") {
		t.Fatalf("diags = %v, want %v", byLine, want)
	}
	var sawNoReason, sawUnknown bool
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "has no reason") {
			sawNoReason = true
		}
		if strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			sawUnknown = true
		}
	}
	if !sawNoReason || !sawUnknown {
		t.Fatalf("missing self-diagnostics (noReason=%v unknown=%v): %+v", sawNoReason, sawUnknown, res.Diags)
	}
}

func TestPanicIsolation(t *testing.T) {
	panicker := &analysis.Analyzer{
		Name: "panicker",
		Doc:  "test analyzer: always panics",
		Run:  func(*analysis.Pass) error { panic("kaboom") },
	}
	errorer := &analysis.Analyzer{
		Name: "errorer",
		Doc:  "test analyzer: always errors",
		Run:  func(*analysis.Pass) error { return errors.New("soft failure") },
	}
	res, _, _ := check(t, "p", "package p\n\nfunc bad() {}\n\nfunc f() { bad() }\n",
		[]*analysis.Analyzer{panicker, callFlagger, errorer}, nil, nil)

	if len(res.Failures) != 2 {
		t.Fatalf("failures = %+v, want panicker and errorer", res.Failures)
	}
	//vetkit:ignore(errsentinel): a recovered panic has no typed sentinel; the message text is the contract
	if res.Failures[0].Analyzer != "panicker" || !strings.Contains(res.Failures[0].Err.Error(), "kaboom") {
		t.Errorf("panic failure = %+v", res.Failures[0])
	}
	if res.Failures[1].Analyzer != "errorer" {
		t.Errorf("error failure = %+v", res.Failures[1])
	}
	// The healthy analyzer still reported.
	if len(res.Diags) != 1 || res.Diags[0].Analyzer != "callflag" {
		t.Fatalf("diags = %+v, want one callflag finding", res.Diags)
	}
}

// TestFact is a minimal fact type for the round-trip test.
type TestFact struct{ Value string }

func (*TestFact) AFact() {}

func TestFactsRoundtrip(t *testing.T) {
	exporter := &analysis.Analyzer{
		Name:      "facty",
		Doc:       "test analyzer: exports one fact",
		FactTypes: []analysis.Fact{(*TestFact)(nil)},
		Run: func(pass *analysis.Pass) error {
			return pass.ExportPackageFact(&TestFact{Value: "from " + pass.Pkg.Path()})
		},
	}
	resA, pkgA, _ := check(t, "a", "package a\n\nfunc A() {}\n", []*analysis.Analyzer{exporter}, nil, nil)
	if len(resA.Facts) == 0 {
		t.Fatal("package a exported no fact bytes")
	}

	var got string
	var all []string
	importerAn := &analysis.Analyzer{
		Name:      "facty",
		Doc:       "test analyzer: imports the fact",
		FactTypes: []analysis.Fact{(*TestFact)(nil)},
		Run: func(pass *analysis.Pass) error {
			var f TestFact
			if pass.ImportPackageFact("a", &f) {
				got = f.Value
			}
			pass.AllPackageFacts(func(path string, fact analysis.Fact) {
				all = append(all, path+"="+fact.(*TestFact).Value)
			})
			return nil
		},
	}
	check(t, "b", "package b\n\nimport \"a\"\n\nvar _ = a.A\n", []*analysis.Analyzer{importerAn},
		&analysis.Options{DepFacts: map[string][]byte{"a": resA.Facts}},
		map[string]*types.Package{"a": pkgA})

	if got != "from a" {
		t.Fatalf("ImportPackageFact = %q, want %q", got, "from a")
	}
	if len(all) != 1 || all[0] != "a=from a" {
		t.Fatalf("AllPackageFacts = %v", all)
	}
}

func TestFactsOnlyDiscardsDiagnostics(t *testing.T) {
	res, _, _ := check(t, "p", "package p\n\nfunc bad() {}\n\nfunc f() { bad() }\n",
		[]*analysis.Analyzer{callFlagger}, &analysis.Options{FactsOnly: true}, nil)
	if len(res.Diags) != 0 {
		t.Fatalf("FactsOnly run reported diagnostics: %+v", res.Diags)
	}
}

// TestLockOrderCrossPackage drives the real lockorder analyzer across a
// two-package inversion: package a locks S.Mu before T.Mu, package b
// does the reverse and is caught via a's exported fact edges.
func TestLockOrderCrossPackage(t *testing.T) {
	srcA := `package a

import "sync"

type S struct{ Mu sync.Mutex }

type T struct{ Mu sync.Mutex }

var GS S

var GT T

func AB() {
	GS.Mu.Lock()
	GT.Mu.Lock()
	GT.Mu.Unlock()
	GS.Mu.Unlock()
}
`
	resA, pkgA, _ := check(t, "a", srcA, []*analysis.Analyzer{lockorder.Analyzer}, nil, nil)
	if len(resA.Diags) != 0 {
		t.Fatalf("package a diags = %+v, want none", resA.Diags)
	}

	srcB := `package b

import "a"

func BA() {
	a.GT.Mu.Lock()
	a.GS.Mu.Lock()
	a.GS.Mu.Unlock()
	a.GT.Mu.Unlock()
}
`
	resB, _, _ := check(t, "b", srcB, []*analysis.Analyzer{lockorder.Analyzer},
		&analysis.Options{DepFacts: map[string][]byte{"a": resA.Facts}},
		map[string]*types.Package{"a": pkgA})
	if len(resB.Diags) != 1 || !strings.Contains(resB.Diags[0].Message, "lock order inversion") {
		t.Fatalf("package b diags = %+v, want one inversion", resB.Diags)
	}
	// Without a's facts the inversion is invisible — the fact layer is
	// what makes the check interprocedural.
	resNoFacts, _, _ := check(t, "b", srcB, []*analysis.Analyzer{lockorder.Analyzer}, nil,
		map[string]*types.Package{"a": pkgA})
	if len(resNoFacts.Diags) != 0 {
		t.Fatalf("factless run diags = %+v, want none", resNoFacts.Diags)
	}
}

// TestObsNameCrossPackage: a second package declaring its own constant
// for a name a dependency already registered is flagged; re-using the
// dependency's exported constant is the sanctioned sharing pattern.
func TestObsNameCrossPackage(t *testing.T) {
	srcA := `package a

type Registry struct{}

type Metric struct{}

func (r *Registry) Counter(name string) *Metric { return nil }

const MSolves = "a.solves"

var Reg Registry

func Register() { Reg.Counter(MSolves) }
`
	resA, pkgA, _ := check(t, "a", srcA, []*analysis.Analyzer{obsname.Analyzer}, nil, nil)
	if len(resA.Diags) != 0 {
		t.Fatalf("package a diags = %+v, want none", resA.Diags)
	}

	srcShared := `package b

import "a"

func Shared() { a.Reg.Counter(a.MSolves) }
`
	resShared, _, _ := check(t, "b", srcShared, []*analysis.Analyzer{obsname.Analyzer},
		&analysis.Options{DepFacts: map[string][]byte{"a": resA.Facts}},
		map[string]*types.Package{"a": pkgA})
	if len(resShared.Diags) != 0 {
		t.Fatalf("shared-constant diags = %+v, want none", resShared.Diags)
	}

	srcForked := `package b

import "a"

const mSolves = "a.solves"

func Forked() { a.Reg.Counter(mSolves) }
`
	resForked, _, _ := check(t, "b", srcForked, []*analysis.Analyzer{obsname.Analyzer},
		&analysis.Options{DepFacts: map[string][]byte{"a": resA.Facts}},
		map[string]*types.Package{"a": pkgA})
	var sawDup bool
	for _, d := range resForked.Diags {
		if strings.Contains(d.Message, "already registered via a.MSolves") {
			sawDup = true
		}
	}
	if !sawDup {
		t.Fatalf("forked-constant diags = %+v, want a registered-once finding", resForked.Diags)
	}
}
