// Fixture: mutexes must be acquired in one consistent order. The
// canonical order here is Store.mu before Index.mu; the inverted
// function and the re-acquisitions are the flagged patterns.
package locks

import "sync"

type Store struct{ mu sync.Mutex }

type Index struct{ mu sync.Mutex }

var store Store

var index Index

// Canonical establishes the Store.mu → Index.mu order.
func Canonical() {
	store.mu.Lock()
	index.mu.Lock()
	index.mu.Unlock()
	store.mu.Unlock()
}

// DeferHeld keeps the same order with a deferred unlock; the lock is
// held to function end but never inverted.
func DeferHeld() {
	store.mu.Lock()
	defer store.mu.Unlock()
	index.mu.Lock()
	index.mu.Unlock()
}

// lockIndex is a helper whose acquisitions propagate to callers.
func lockIndex() {
	index.mu.Lock()
	index.mu.Unlock()
}

// ViaCall acquires Index.mu through the helper while holding Store.mu —
// same direction as Canonical, so allowed.
func ViaCall() {
	store.mu.Lock()
	lockIndex()
	store.mu.Unlock()
}

// Inverted takes the pair in the opposite order: a latent deadlock
// against Canonical.
func Inverted() {
	index.mu.Lock()
	store.mu.Lock() // want `lock order inversion`
	store.mu.Unlock()
	index.mu.Unlock()
}

// Recursive re-acquires a non-reentrant mutex directly.
func Recursive() {
	store.mu.Lock()
	store.mu.Lock() // want `self-deadlock`
	store.mu.Unlock()
	store.mu.Unlock()
}

// lockStore is a helper that takes Store.mu.
func lockStore() {
	store.mu.Lock()
	store.mu.Unlock()
}

// SelfViaCall re-acquires Store.mu through a helper call.
func SelfViaCall() {
	store.mu.Lock()
	lockStore() // want `self-deadlock`
	store.mu.Unlock()
}

// Branches walks each arm with its own held set: the else arm's
// acquisition is not ordered against the if arm's.
func Branches(flip bool) {
	if flip {
		store.mu.Lock()
		store.mu.Unlock()
	} else {
		index.mu.Lock()
		index.mu.Unlock()
	}
}

// Spawned goroutine bodies run on their own stack of held locks; no
// edge from Store.mu to Index.mu is recorded here... and the reverse
// order inside the literal is real code the analyzer must not conflate
// with the spawner's held set.
func SpawnedIndependent(done chan struct{}) {
	store.mu.Lock()
	go func() {
		index.mu.Lock()
		index.mu.Unlock()
		close(done)
	}()
	store.mu.Unlock()
}
