package lockorder_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "locks")
}
