// Package lockorder enforces a single global mutex acquisition order.
// It tracks, lexically, which locks are held at every sync.Mutex /
// sync.RWMutex acquisition and records the ordering edges it sees
// (lock A held while acquiring B ⇒ edge A→B). Two packages — or two
// functions — that acquire the same pair of locks in opposite orders
// can deadlock under concurrency; the analyzer flags every such
// inversion, plus re-acquisition of a lock already held (self-deadlock
// for non-reentrant sync mutexes).
//
// Locks are named structurally: a mutex field is "Type.field" prefixed
// by its defining package, a package-level mutex is "pkg.var", and a
// function-local mutex is scoped to its function. Calls into
// same-package functions propagate their acquired locks (computed to a
// fixpoint), and exported functions' acquisitions travel across package
// boundaries as facts, so a handler holding service.Service.mu that
// calls into a store which takes locks in the opposite order is caught
// even though the two acquisitions are in different packages.
//
// Branch arms are walked with independent copies of the held set, and a
// function literal's body is walked with an empty held set (it usually
// runs on another goroutine). Deferred unlocks keep the lock held to
// the end of the function. _test.go files are exempt.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "mutexes must be acquired in one consistent order; an inversion " +
		"(A then B in one path, B then A in another) is a latent deadlock",
	Run:       run,
	FactTypes: []analysis.Fact{(*LockFact)(nil)},
}

// A LockFact summarizes a package's locking behavior for importers: the
// ordering edges observed inside it, and for each exported function the
// set of locks it (transitively) acquires.
type LockFact struct {
	Edges    []FactEdge
	Acquires map[string][]string
}

// A FactEdge is one "From held while acquiring To" observation; Where
// is a printable source position for diagnostics in other packages.
type FactEdge struct {
	From, To, Where string
}

func (*LockFact) AFact() {}

// edge is a local ordering observation with a reportable position.
type edge struct {
	from, to string
	pos      token.Pos
	where    string // position rendered for cross-package messages
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// acquires maps each package function to every lock key it acquires,
	// transitively through same-package calls (fixpoint).
	acquires map[*types.Func]map[string]bool
	edges    []edge
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		acquires: make(map[*types.Func]map[string]bool),
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}

	c.computeAcquires()

	// Second pass: walk every function with held-set tracking, recording
	// edges and reporting re-acquisitions.
	for obj, fd := range c.decls {
		c.walkStmts(fd.Body.List, map[string]bool{}, funcKey(obj))
	}

	c.exportFact()
	c.reportInversions()
	return nil
}

// computeAcquires builds the transitive acquires sets: direct Lock
// calls plus the acquires of every same-package callee, iterated to a
// fixpoint (the call graph may have cycles).
func (c *checker) computeAcquires() {
	for obj, fd := range c.decls {
		set := make(map[string]bool)
		fk := funcKey(obj)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op := c.lockOp(call, fk); op == opLock {
					set[key] = true
				}
			}
			return true
		})
		c.acquires[obj] = set
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for key := range c.calleeAcquires(call) {
					if !c.acquires[obj][key] {
						c.acquires[obj][key] = true
						changed = true
					}
				}
				return true
			})
		}
	}
}

// calleeAcquires returns the lock set of the function call targets:
// same-package functions from the fixpoint, module dependencies from
// their exported LockFact.
func (c *checker) calleeAcquires(call *ast.CallExpr) map[string]bool {
	obj := calleeObj(c.pass, call)
	if obj == nil {
		return nil
	}
	if set, ok := c.acquires[obj]; ok {
		return set
	}
	pkg := obj.Pkg()
	if pkg == nil || pkg == c.pass.Pkg || !obj.Exported() {
		return nil
	}
	var fact LockFact
	if !c.pass.ImportPackageFact(pkg.Path(), &fact) {
		return nil
	}
	keys, ok := fact.Acquires[factFuncName(obj)]
	if !ok {
		return nil
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies call as a mutex acquisition or release and returns
// the lock's structural key. fk scopes local-variable locks to their
// function.
func (c *checker) lockOp(call *ast.CallExpr, fk string) (string, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", opNone
	}
	return c.lockKey(sel.X, fk), kind
}

// lockKey names the lock expression structurally so the same lock gets
// the same key from any function in any package.
func (c *checker) lockKey(x ast.Expr, fk string) string {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		// A field selector: name it by the field's owning named type.
		if tv, ok := c.pass.TypesInfo.Types[e.X]; ok {
			if name, pkg := namedTypeOf(tv.Type); name != "" {
				return pkg + "." + name + "." + e.Sel.Name
			}
		}
		return fk + "." + e.Sel.Name
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return pathBase(obj.Pkg().Path()) + "." + e.Name
			}
		}
		return fk + "." + e.Name
	case *ast.ParenExpr:
		return c.lockKey(e.X, fk)
	case *ast.StarExpr:
		return c.lockKey(e.X, fk)
	default:
		return fk + "." + types.ExprString(x)
	}
}

// walkStmts walks a statement list in order, threading the held set
// through sequential statements; branch arms get independent copies.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[string]bool, fk string) {
	for _, s := range stmts {
		c.walkStmt(s, held, fk)
	}
}

func (c *checker) walkStmt(s ast.Stmt, held map[string]bool, fk string) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		c.walkExpr(st.X, held, fk)
	case *ast.DeferStmt:
		// A deferred unlock releases at function end: the lock stays in
		// the held set for the remainder of the walk, which is exactly
		// the ordering-relevant window. A deferred Lock would be odd;
		// treat it as an acquisition at the defer site.
		if key, op := c.lockOp(st.Call, fk); op == opLock {
			c.acquire(key, st.Call.Pos(), held)
		}
		for _, a := range st.Call.Args {
			c.walkExpr(a, held, fk)
		}
	case *ast.GoStmt:
		// The spawned body runs on another goroutine with its own stack
		// of held locks.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, map[string]bool{}, fk)
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			c.walkExpr(r, held, fk)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.walkExpr(v, held, fk)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.walkExpr(r, held, fk)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held, fk)
		}
		c.walkExpr(st.Cond, held, fk)
		c.walkStmts(st.Body.List, copySet(held), fk)
		if st.Else != nil {
			c.walkStmt(st.Else, copySet(held), fk)
		}
	case *ast.BlockStmt:
		c.walkStmts(st.List, held, fk)
	case *ast.ForStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held, fk)
		}
		c.walkStmts(st.Body.List, copySet(held), fk)
	case *ast.RangeStmt:
		c.walkExpr(st.X, held, fk)
		c.walkStmts(st.Body.List, copySet(held), fk)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held, fk)
		}
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, copySet(held), fk)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, copySet(held), fk)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cl.Body, copySet(held), fk)
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(st.Stmt, held, fk)
	}
}

// walkExpr handles lock operations and calls appearing in expression
// position (the common `mu.Lock()` ExprStmt arrives here).
func (c *checker) walkExpr(x ast.Expr, held map[string]bool, fk string) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		// Function literals in expression position run later; walk them
		// with a fresh held set.
		if lit, ok := x.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, map[string]bool{}, fk)
		}
		return
	}
	if key, op := c.lockOp(call, fk); op != opNone {
		switch op {
		case opLock:
			c.acquire(key, call.Pos(), held)
		case opUnlock:
			delete(held, key)
		}
		return
	}
	// An ordinary call: every lock the callee acquires is ordered after
	// every lock currently held.
	for key := range c.calleeAcquires(call) {
		if held[key] {
			c.pass.Reportf(call.Pos(),
				"call acquires %s, which is already held here (self-deadlock: sync mutexes are not reentrant)", key)
			continue
		}
		c.recordEdges(key, call.Pos(), held)
	}
	for _, a := range call.Args {
		c.walkExpr(a, held, fk)
	}
}

func (c *checker) acquire(key string, pos token.Pos, held map[string]bool) {
	if held[key] {
		c.pass.Reportf(pos,
			"%s is acquired while already held (self-deadlock: sync mutexes are not reentrant)", key)
		return
	}
	c.recordEdges(key, pos, held)
	held[key] = true
}

func (c *checker) recordEdges(to string, pos token.Pos, held map[string]bool) {
	for from := range held {
		c.edges = append(c.edges, edge{
			from: from, to: to, pos: pos,
			where: c.pass.Fset.Position(pos).String(),
		})
	}
}

// reportInversions flags every lock pair ordered both ways, merging in
// the edges dependency packages exported as facts.
func (c *checker) reportInversions() {
	type key struct{ from, to string }
	foreign := make(map[key]string) // dep edge → its recorded position
	c.pass.AllPackageFacts(func(path string, f analysis.Fact) {
		lf, ok := f.(*LockFact)
		if !ok {
			return
		}
		for _, e := range lf.Edges {
			k := key{e.From, e.To}
			if _, dup := foreign[k]; !dup {
				foreign[k] = e.Where
			}
		}
	})

	local := make(map[key]edge)
	for _, e := range c.edges {
		k := key{e.from, e.to}
		if old, ok := local[k]; !ok || e.pos < old.pos {
			local[k] = e
		}
	}

	reported := make(map[key]bool)
	for k, e := range local {
		rev := key{k.to, k.from}
		if k.from == k.to || reported[k] || reported[rev] {
			continue
		}
		if other, ok := local[rev]; ok {
			// Report at the lexically later site so the fixture want
			// comment sits on the inverting acquisition.
			at, ref := e, other
			if ref.pos > at.pos {
				at, ref = ref, at
			}
			c.pass.Reportf(at.pos,
				"lock order inversion: %s acquired while holding %s, but %s acquires them in the opposite order (deadlock risk)",
				at.to, at.from, ref.where)
			reported[k], reported[rev] = true, true
			continue
		}
		if where, ok := foreign[rev]; ok {
			c.pass.Reportf(e.pos,
				"lock order inversion: %s acquired while holding %s, but %s acquires them in the opposite order (deadlock risk)",
				e.to, e.from, where)
			reported[k], reported[rev] = true, true
		}
	}
}

// exportFact publishes this package's edges and exported functions'
// acquire sets for importing packages.
func (c *checker) exportFact() {
	fact := &LockFact{Acquires: make(map[string][]string)}
	seen := make(map[FactEdge]bool)
	for _, e := range c.edges {
		fe := FactEdge{From: e.from, To: e.to, Where: e.where}
		if !seen[fe] {
			seen[fe] = true
			fact.Edges = append(fact.Edges, fe)
		}
	}
	sort.Slice(fact.Edges, func(i, j int) bool {
		a, b := fact.Edges[i], fact.Edges[j]
		return a.From+"\x00"+a.To < b.From+"\x00"+b.To
	})
	for obj, set := range c.acquires {
		if !obj.Exported() || len(set) == 0 {
			continue
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fact.Acquires[factFuncName(obj)] = keys
	}
	if len(fact.Edges) == 0 && len(fact.Acquires) == 0 {
		return
	}
	if err := c.pass.ExportPackageFact(fact); err != nil {
		c.pass.Reportf(token.NoPos, "exporting lock facts: %v", err)
	}
}

// calleeObj resolves the called function, if it is a declared function
// or method (not a builtin, conversion, or function value).
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}

// funcKey names a function for scoping local locks, e.g.
// "service.(*Service).Optimize".
func funcKey(obj *types.Func) string {
	return pathBase(obj.Pkg().Path()) + "." + factFuncName(obj)
}

// factFuncName is the package-relative function name used in facts:
// "Func" or "Type.Method".
func factFuncName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if name, _ := namedTypeOf(recv.Type()); name != "" {
			return name + "." + obj.Name()
		}
	}
	return obj.Name()
}

// namedTypeOf unwraps pointers and returns the named type's name and
// its package path base, or "" for unnamed types.
func namedTypeOf(t types.Type) (name, pkg string) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Name(), pathBase(named.Obj().Pkg().Path())
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
