// Package httpenvelope enforces the PR 7 HTTP error contract: every
// error a handler returns to a client travels as the typed JSON
// envelope {"error","detail"} with a status from the approved set, so
// clients (and the service smoke test) can parse failures uniformly.
//
// Concretely, in production code:
//
//   - http.Error is banned everywhere — it emits text/plain, not the
//     envelope;
//   - w.WriteHeader may be called only inside a designated envelope
//     writer: a function whose name starts with "write" and that takes
//     an http.ResponseWriter parameter (internal/service's writeJSON).
//     Handlers must route through such a writer, never set status
//     codes ad hoc;
//   - a constant HTTP status (100–599) passed to WriteHeader or to a
//     write* envelope function must come from the approved set below —
//     anything else is a status the API contract never defined.
//
// The approved set is the service's documented surface: 200, 201, 204,
// 400, 404, 409, 429 (admission shed), 499 (client went away, nginx's
// convention), 500, 503 (draining / no plan), 504 (deadline).
// _test.go files are exempt.
package httpenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "httpenvelope",
	Doc: "handler errors must use the typed JSON envelope writer with an " +
		"approved status; no http.Error or ad-hoc w.WriteHeader",
	Run: run,
}

// approvedStatus is the service's documented status surface.
var approvedStatus = map[int64]bool{
	200: true, 201: true, 204: true,
	400: true, 404: true, 409: true, 429: true, 499: true,
	500: true, 503: true, 504: true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	inWriter := isEnvelopeWriter(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isHTTPError(pass, call):
			pass.Reportf(call.Pos(),
				"http.Error writes text/plain, not the typed {\"error\",\"detail\"} envelope; use the envelope writer")
		case isWriteHeader(pass, call):
			if !inWriter {
				pass.Reportf(call.Pos(),
					"w.WriteHeader outside an envelope writer; handlers must set status through a write* envelope function")
			}
			checkStatusArgs(pass, call.Args)
		case isEnvelopeWriterCall(pass, call):
			checkStatusArgs(pass, call.Args)
		}
		return true
	})
}

// isEnvelopeWriter reports whether fd is a designated envelope writer:
// named write* with an http.ResponseWriter parameter.
func isEnvelopeWriter(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !strings.HasPrefix(fd.Name.Name, "write") && !strings.HasPrefix(fd.Name.Name, "Write") {
		return false
	}
	return hasResponseWriterParam(pass, fd.Type.Params)
}

func hasResponseWriterParam(pass *analysis.Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isResponseWriter(tv.Type) {
			return true
		}
	}
	return false
}

func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "ResponseWriter" && o.Pkg() != nil && o.Pkg().Path() == "net/http"
}

// isHTTPError matches net/http.Error(...) calls.
func isHTTPError(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "net/http"
}

// isWriteHeader matches WriteHeader method calls on an
// http.ResponseWriter (or a type embedding one).
func isWriteHeader(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	// The interface method declared by net/http, or a concrete method
	// promoted from an embedded ResponseWriter.
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isEnvelopeWriterCall matches calls to same-package write* functions
// that take an http.ResponseWriter, so their constant status arguments
// can be validated at the call site.
func isEnvelopeWriterCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeFunc(pass, call)
	if obj == nil || obj.Pkg() != pass.Pkg {
		return false
	}
	name := obj.Name()
	if !strings.HasPrefix(name, "write") && !strings.HasPrefix(name, "Write") {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isResponseWriter(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}

// checkStatusArgs flags constant integer arguments that look like HTTP
// statuses but are outside the approved set.
func checkStatusArgs(pass *analysis.Pass, args []ast.Expr) {
	for _, a := range args {
		tv, ok := pass.TypesInfo.Types[a]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		v, ok := constant.Int64Val(tv.Value)
		if !ok || v < 100 || v > 599 {
			continue
		}
		if !approvedStatus[v] {
			pass.Reportf(a.Pos(),
				"status %d is not in the approved envelope status set (see httpenvelope doc); the API contract never defined it", v)
		}
	}
}
