// Fixture: handler errors must travel as the typed JSON envelope via a
// write* envelope writer with a status from the approved set. Bare
// http.Error, ad-hoc WriteHeader, and off-contract statuses are the
// flagged patterns.
package envelope

import (
	"encoding/json"
	"net/http"
)

type apiError struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

// writeJSON is the designated envelope writer: named write*, takes the
// ResponseWriter, and is the one place WriteHeader is allowed.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRedirect is an envelope writer by shape, but 302 is not on the
// API contract's status surface.
func writeRedirect(w http.ResponseWriter) {
	w.WriteHeader(302) // want `not in the approved`
}

// HandleBad bypasses the envelope with text/plain http.Error.
func HandleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error`
}

// HandleAdHoc sets a status outside any envelope writer.
func HandleAdHoc(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent) // want `outside an envelope writer`
}

// HandleTeapot routes through the writer but with an off-contract
// status.
func HandleTeapot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusTeapot, apiError{Error: "teapot"}) // want `not in the approved`
}

// HandleGood is the compliant error path.
func HandleGood(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotFound, apiError{Error: "not_found", Detail: "no such tenant"})
}

// HandleOK writes a success envelope.
func HandleOK(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
