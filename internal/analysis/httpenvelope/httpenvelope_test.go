package httpenvelope_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/httpenvelope"
)

func TestHTTPEnvelope(t *testing.T) {
	analysistest.Run(t, httpenvelope.Analyzer, "envelope")
}
