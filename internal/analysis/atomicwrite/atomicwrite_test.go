package atomicwrite_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/atomicwrite"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, atomicwrite.Analyzer, "a", "internal/atomicio", "internal/obs")
}
