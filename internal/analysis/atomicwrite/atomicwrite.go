// Package atomicwrite enforces the PR 2 durability contract: every
// durable artifact (checkpoints, CSVs, profiles, benchmark snapshots)
// is written through internal/atomicio's write-temp+fsync+rename path,
// never with a direct os.WriteFile / os.Create / write-mode os.OpenFile.
// A direct write that is interrupted by a crash or Ctrl-C leaves a torn
// file that the resume path then trusts — exactly the failure class
// atomicio was built to remove.
//
// Exempt: the internal/atomicio package itself (it is the one place the
// raw primitives are allowed), _test.go files (scratch fixtures are not
// durable artifacts), os.CreateTemp (scratch by construction — this is
// also what admits internal/obs's streamed profile writer, which streams
// CPU profiles and execution traces into a CreateTemp scratch file and
// publishes it with the same sync+rename protocol atomicio uses), and
// read-only os.OpenFile calls.
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"strings"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "durable writes must go through internal/atomicio, not direct " +
		"os.WriteFile/os.Create/write-mode os.OpenFile or the deprecated io/ioutil",
	Run: run,
}

// writeFlagMask are the os.OpenFile flag bits that make a call a write.
// os.O_RDONLY is zero, so a read-only open never has any of these set.
const writeFlagMask = os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/atomicio") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "io/ioutil":
				pass.Reportf(call.Pos(),
					"io/ioutil is deprecated and bypasses the atomic-write contract; use os for reads and internal/atomicio for durable writes")
			case "os":
				switch sel.Sel.Name {
				case "WriteFile", "Create":
					pass.Reportf(call.Pos(),
						"direct os.%s writes a durable artifact non-atomically; use internal/atomicio.WriteFile (write-temp+fsync+rename)", sel.Sel.Name)
				case "OpenFile":
					if openFileWrites(pass, call) {
						pass.Reportf(call.Pos(),
							"os.OpenFile with write flags bypasses internal/atomicio; durable artifacts must be written atomically")
					}
				}
			}
			return true
		})
	}
	return nil
}

// openFileWrites reports whether an os.OpenFile call can write: its flag
// argument is a constant containing a write bit, or is not constant (in
// which case we cannot prove it read-only and flag it).
func openFileWrites(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true
	}
	flags, ok := constant.Int64Val(tv.Value)
	return !ok || flags&int64(writeFlagMask) != 0
}
