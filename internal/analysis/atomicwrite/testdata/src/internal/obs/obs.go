// Fixture: the observability layer's streamed profile writer. CPU
// profiles and execution traces are written incrementally over a whole
// run, so they cannot use atomicio's one-shot callback; instead the
// writer streams into an os.CreateTemp scratch file and commits it with
// the same sync+rename protocol atomicio uses. Nothing here may be
// flagged: os.CreateTemp is scratch by construction, and the rename
// publishes only a fully synced file.
package obs

import (
	"os"
	"path/filepath"
)

type streamedFile struct {
	tmp  *os.File
	path string
}

func newStreamedFile(path string) (*streamedFile, error) {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*") // ok: scratch by construction
	if err != nil {
		return nil, err
	}
	return &streamedFile{tmp: tmp, path: path}, nil
}

func (f *streamedFile) commit() error {
	if err := f.tmp.Sync(); err != nil {
		f.abort()
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	return os.Rename(f.tmp.Name(), f.path)
}

func (f *streamedFile) abort() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// startTraceEvents mimics the trace-timeline exporter: Chrome
// trace_event JSON is streamed one span at a time for the whole run, so
// it rides the same CreateTemp+sync+rename path as the profile writer.
// Exempt for the same reason — the rename publishes only a synced file.
func startTraceEvents(path string) (*streamedFile, error) {
	f, err := newStreamedFile(path) // ok: streams into CreateTemp scratch
	if err != nil {
		return nil, err
	}
	if _, err := f.tmp.WriteString(`{"traceEvents":[`); err != nil {
		f.abort()
		return nil, err
	}
	return f, nil
}
