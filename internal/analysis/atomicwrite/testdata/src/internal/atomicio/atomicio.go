// Fixture: the internal/atomicio package itself is the one place the
// raw primitives are allowed — nothing here may be flagged.
package atomicio

import "os"

func writeRaw(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
