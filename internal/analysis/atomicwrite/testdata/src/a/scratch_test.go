// Fixture: _test.go files are exempt — test fixtures are not durable
// artifacts, so none of these may be flagged.
package a

import "os"

func writeFixture(path string, data []byte) error {
	if _, err := os.Create(path + ".stamp"); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
