// Fixture: durable writes outside internal/atomicio, all flagged, plus
// the deliberately-allowed read-only and scratch patterns.
package a

import (
	"io/ioutil"
	"os"
)

func writeAll(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `internal/atomicio`
}

func createIt(path string) (*os.File, error) {
	return os.Create(path) // want `os\.Create writes a durable artifact non-atomically`
}

func openForAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644) // want `os\.OpenFile with write flags`
}

func openUnknownFlags(path string, flags int) (*os.File, error) {
	return os.OpenFile(path, flags, 0o644) // want `os\.OpenFile with write flags`
}

func legacyWrite(path string, data []byte) error {
	return ioutil.WriteFile(path, data, 0o644) // want `io/ioutil is deprecated`
}

func readOnly(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0) // ok: provably read-only
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path) // ok: reads are not durability hazards
}

func scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "scratch-*") // ok: scratch by construction
}

// writeManifest mimics a command dumping its run manifest / metrics
// snapshot with a direct write instead of going through the obs layer
// (which routes through internal/atomicio): flagged like any other
// durable artifact.
func writeManifest(path string, manifestJSON []byte) error {
	return os.WriteFile(path, manifestJSON, 0o644) // want `internal/atomicio`
}

func writeMetricsSnapshot(path string) (*os.File, error) {
	return os.Create(path) // want `os\.Create writes a durable artifact non-atomically`
}

// writeTraceJSON mimics dumping a rendered Chrome trace_event document
// in one shot. Unlike the obs streamed writer (exempt: CreateTemp +
// sync + rename), a direct one-shot dump of the trace is a durable
// artifact like any other and must go through atomicio.
func writeTraceJSON(path string, traceJSON []byte) error {
	return os.WriteFile(path, traceJSON, 0o644) // want `internal/atomicio`
}
