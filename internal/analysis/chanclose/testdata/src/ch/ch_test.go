// Fixture: _test.go files are exempt — tests may shape channels freely
// to provoke the very hangs the production contract forbids.
package ch

func testShape(n int) {
	jobs := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	for range jobs {
	}
}
