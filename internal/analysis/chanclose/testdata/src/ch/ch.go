// Fixture: worker-pool jobs channels must be pre-filled and closed
// before the worker goroutines launch (the PR 2 cancellation contract).
// The good() shape is the one the pipeline uses everywhere.
package ch

import "sync"

func good(n int) {
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
			}
		}()
	}
	wg.Wait()
}

func closeAfterLaunch(n int) {
	jobs := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs) // want `closed after the workers launch`
	wg.Wait()
}

func feederGoroutine(n int) {
	jobs := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs) // want `closed inside a goroutine \(feeder shape\)`
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
			}
		}()
	}
	wg.Wait()
}

func neverClosed(n int) {
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	go func() { // want `never closes`
		for range jobs {
		}
	}()
}

func deferredClose(n int) {
	jobs := make(chan int, n)
	defer close(jobs) // want `close is deferred`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range jobs {
		}
	}()
	for i := 0; i < n; i++ {
		jobs <- i
	}
	wg.Wait()
}

// escapesToCallee hands the channel to another function, which then
// owns the close contract; the analyzer stays conservative and silent.
func escapesToCallee(n int) {
	jobs := make(chan int, n)
	go func() {
		for range jobs {
		}
	}()
	fill(jobs, n)
}

func fill(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

// resultsDrainedInline is the inverse shape — goroutines produce,
// the function body consumes — and is not a jobs-channel pattern.
func resultsDrainedInline(n int) int {
	results := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- i
		}(i)
	}
	wg.Wait()
	close(results)
	total := 0
	for r := range results {
		total += r
	}
	return total
}
