package chanclose_test

import (
	"testing"

	"partitionshare/internal/analysis/analysistest"
	"partitionshare/internal/analysis/chanclose"
)

func TestChanClose(t *testing.T) {
	analysistest.Run(t, chanclose.Analyzer, "ch")
}
