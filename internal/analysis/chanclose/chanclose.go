// Package chanclose enforces the PR 2 worker-pool shape: a jobs channel
// that worker goroutines range over must be fully pre-filled and closed
// before the first worker launches. The alternative shapes all strand
// goroutines on cancellation — a feeder goroutine blocked on a send into
// an abandoned channel, or workers parked forever in range on a channel
// nobody closes once the producer errors out mid-loop. Pre-fill+close
// makes the drain unconditional: workers consume what is buffered and
// exit, no matter when or whether the context fires.
//
// The analyzer is deliberately conservative: it only judges channels
// created with make(chan …) in the same function body, consumed by `go
// func() { … range ch … }` literals there, and never passed out of the
// function (a channel that escapes has its lifecycle owned elsewhere,
// e.g. a pool struct with a close method). _test.go files are exempt.
package chanclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"partitionshare/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "chanclose",
	Doc: "worker-pool jobs channels must be pre-filled and closed before " +
		"the worker goroutines launch (PR 2 cancellation contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// chanInfo accumulates everything the rule needs about one channel
// object local to the function under inspection.
type chanInfo struct {
	firstLaunch   token.Pos // earliest `go func(){… range ch …}` launch
	closePos      token.Pos // earliest close(ch) in the function
	closeInGo     bool      // that close sits inside a goroutine literal
	closeDeferred bool      // that close is deferred
	escapes       bool      // ch leaves the function (arg, return, field, …)
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	chans := map[types.Object]*chanInfo{}

	// Pass 1: find the function-local make(chan …) channels.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isMakeChan(pass, rhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				chans[obj] = &chanInfo{}
			}
		}
		return true
	})
	if len(chans) == 0 {
		return
	}

	// Pass 2: walk with a stack of enclosing function literals / go
	// statements so each use can be classified.
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			classifyCall(pass, n, stack, chans)
		case *ast.RangeStmt:
			if obj := usedObj(pass, n.X); obj != nil {
				if info, ok := chans[obj]; ok {
					if pos, ok := enclosingGoLaunch(stack); ok {
						if info.firstLaunch == token.NoPos || pos < info.firstLaunch {
							info.firstLaunch = pos
						}
					}
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit:
			markEscapes(pass, n, chans)
		case *ast.AssignStmt:
			// Aliasing (ch2 := ch) or storing into a field hands the
			// lifecycle to someone else; the make() RHS itself never
			// mentions the channel being defined.
			for _, rhs := range n.Rhs {
				if !isMakeChan(pass, rhs) {
					markEscapes(pass, rhs, chans)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, info := range chans {
		if info.firstLaunch == token.NoPos || info.escapes {
			continue
		}
		switch {
		case info.closePos == token.NoPos:
			pass.Reportf(info.firstLaunch,
				"workers range over a jobs channel that this function never closes; pre-fill and close it before launching them")
		case info.closeInGo:
			pass.Reportf(info.closePos,
				"jobs channel is closed inside a goroutine (feeder shape); cancellation can strand the feeder on a blocked send — pre-fill and close before launching workers")
		case info.closeDeferred:
			pass.Reportf(info.closePos,
				"jobs channel close is deferred until after the workers are waited on; pre-fill and close it before launching them")
		case info.closePos > info.firstLaunch:
			pass.Reportf(info.closePos,
				"jobs channel is closed after the workers launch; pre-fill and close it first so a cancelled run always drains")
		}
	}
}

// classifyCall records close(ch) calls and argument escapes.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, chans map[types.Object]*chanInfo) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "close":
			if len(call.Args) == 1 {
				if obj := usedObj(pass, call.Args[0]); obj != nil {
					if info, ok := chans[obj]; ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
							if info.closePos == token.NoPos {
								info.closePos = call.Pos()
								info.closeInGo = insideFuncLit(stack)
								info.closeDeferred = insideDefer(stack)
							}
							return
						}
					}
				}
			}
		case "len", "cap":
			return
		}
	}
	// Any channel passed as an argument to a non-builtin call escapes.
	for _, arg := range call.Args {
		if obj := usedObj(pass, arg); obj != nil {
			if info, ok := chans[obj]; ok {
				info.escapes = true
			}
		}
	}
}

// markEscapes flags channels that leave the function via return values
// or composite literals (stored in a struct/slice/map).
func markEscapes(pass *analysis.Pass, n ast.Node, chans map[types.Object]*chanInfo) {
	ast.Inspect(n, func(m ast.Node) bool {
		if e, ok := m.(ast.Expr); ok {
			if obj := usedObj(pass, e); obj != nil {
				if info, ok := chans[obj]; ok {
					info.escapes = true
				}
			}
		}
		return true
	})
}

func isMakeChan(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// usedObj resolves a bare identifier expression to its object.
func usedObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// enclosingGoLaunch reports whether the innermost enclosing function
// literal on the stack is launched directly by a go statement, and if
// so, the position of that launch.
func enclosingGoLaunch(stack []ast.Node) (token.Pos, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		// Direct `go func(){…}(…)`: GoStmt → CallExpr → FuncLit.
		if i >= 2 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == lit {
				if g, ok := stack[i-2].(*ast.GoStmt); ok {
					return g.Pos(), true
				}
			}
		}
		return token.NoPos, false
	}
	return token.NoPos, false
}

func insideFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

func insideDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}
