// Package analysis is a self-contained, standard-library-only analogue
// of golang.org/x/tools/go/analysis, sized for this repository's needs.
// It exists because the verify gate must run in offline containers where
// x/tools cannot be downloaded; the API mirrors the upstream shape
// (Analyzer, Pass, Diagnostic, and since PR 8 package-level Facts) so
// the project-specific analyzers under internal/analysis/... can be
// ported to the real framework mechanically if a vendored x/tools ever
// becomes available.
//
// The analyzers themselves encode this repository's pipeline invariants —
// the contracts established by PR 1 (shared DP kernels, bit-exactness),
// PR 2 (atomic durable writes, context plumbing, typed error sentinels,
// pre-filled-and-closed worker channels), and PR 7 (lock ordering,
// goroutine joins, deadline propagation, typed HTTP error envelopes,
// registered observability names). See DESIGN.md §10 for the catalogue
// and cmd/vetkit for the driver.
//
// # Facts
//
// An analyzer that declares FactTypes may export serialized facts about
// the package it analyzes (Pass.ExportPackageFact) and import the facts
// its dependencies exported (Pass.ImportPackageFact / AllPackageFacts).
// Facts ride the cmd/go vet-tool protocol: the driver writes them to the
// unit's VetxOutput file and serves dependencies' facts from the files
// named in the vet.cfg PackageVetx map, so analysis is interprocedural
// across package boundaries without a whole-program loader. Unlike
// upstream go/analysis there are no per-object facts — package facts
// keyed by the symbol names the analyzers themselves choose have been
// sufficient, and they avoid the objectpath machinery.
//
// # Suppressions
//
// A finding can be silenced at the line level with a mandatory reason:
//
//	reg.Counter(dynamicName) //vetkit:ignore(obsname): name is forwarded from per-simulator constants
//
// The comment suppresses matching diagnostics on its own line, or — when
// it stands alone on a line — on the line below. An ignore with an empty
// reason is itself a diagnostic, as is one naming an unknown analyzer.
// Suppressions are returned to the driver, which counts them in vetkit's
// summary line; nothing is silently dropped.
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// A Fact is a serializable observation about an analyzed package,
// exported for downstream packages. Fact types must be gob-encodable
// pointers-to-struct and are declared in an Analyzer's FactTypes.
type Fact interface {
	// AFact marks the type as a fact and is never called.
	AFact()
}

// An Analyzer describes one static check: a name, what invariant it
// enforces, and a Run function applied once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command-line flags.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by `vetkit -help`,
	// stating the invariant the analyzer enforces and which patterns are
	// deliberately exempt.
	Doc string

	// Run applies the check to a single package. Diagnostics are
	// delivered through pass.Report / pass.Reportf; the error return is
	// reserved for analyzer-internal failures, not findings.
	Run func(*Pass) error

	// FactTypes lists zero values of the fact types this analyzer
	// exports and imports. An analyzer with FactTypes runs over
	// dependency packages too (fact-gathering passes), so keep fact
	// computation cheap.
	FactTypes []Fact
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills this in.
	Report func(Diagnostic)

	exported *[]encodedFact           // facts exported by this pass (shared per Check)
	imported map[string][]encodedFact // dependency import path → its exported facts
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Reportf reports a formatted diagnostic at pos.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	pass.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Most
// invariants are production-code contracts: tests legitimately write
// scratch files directly, compare floats bit-exactly in differential
// tests, and spawn bare goroutines.
func (pass *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// factTypeName is the stable identifier a fact type serializes under.
func factTypeName(f Fact) string {
	return reflect.TypeOf(f).String()
}

// encodedFact is one serialized fact: which analyzer exported it, the
// fact type's name, and the gob encoding of the value.
type encodedFact struct {
	Analyzer string
	Type     string
	Data     []byte
}

// ExportPackageFact records fact about the package being analyzed, for
// consumption by analyzers of importing packages. The fact is serialized
// immediately; a later mutation of fact is not observed.
func (pass *Pass) ExportPackageFact(fact Fact) error {
	if pass.exported == nil {
		return fmt.Errorf("analysis: pass for %s cannot export facts (driver provided no sink)", pass.Analyzer.Name)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("analysis: encoding %s fact %T: %w", pass.Analyzer.Name, fact, err)
	}
	*pass.exported = append(*pass.exported, encodedFact{
		Analyzer: pass.Analyzer.Name,
		Type:     factTypeName(fact),
		Data:     buf.Bytes(),
	})
	return nil
}

// ImportPackageFact decodes the dependency package path's fact of
// fact's type into fact and reports whether one was found. Facts are
// keyed by type, not by exporting analyzer, so an analyzer may consume
// facts another analyzer produced (goroutinejoin reads ctxplumb's
// PlumbFact) by listing the type in its own FactTypes.
func (pass *Pass) ImportPackageFact(path string, fact Fact) bool {
	want := factTypeName(fact)
	for _, ef := range pass.imported[path] {
		if ef.Type != want {
			continue
		}
		if err := gob.NewDecoder(bytes.NewReader(ef.Data)).Decode(fact); err != nil {
			return false
		}
		return true
	}
	return false
}

// AllPackageFacts calls fn for every fact of this analyzer's FactTypes
// exported by any dependency, in sorted package-path order. A fresh fact
// value is decoded for each call.
func (pass *Pass) AllPackageFacts(fn func(path string, fact Fact)) {
	byName := make(map[string]Fact, len(pass.Analyzer.FactTypes))
	for _, ft := range pass.Analyzer.FactTypes {
		byName[factTypeName(ft)] = ft
	}
	paths := make([]string, 0, len(pass.imported))
	for p := range pass.imported {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		for _, ef := range pass.imported[p] {
			proto, ok := byName[ef.Type]
			if !ok {
				continue
			}
			fresh := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(Fact)
			if err := gob.NewDecoder(bytes.NewReader(ef.Data)).Decode(fresh); err != nil {
				continue
			}
			fn(p, fresh)
		}
	}
}

// EncodeFacts serializes a package's exported facts for the driver to
// write to the unit's VetxOutput file. Deterministic for a given fact
// sequence.
func encodeFacts(facts []encodedFact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFacts parses bytes produced by a previous Check's Result.Facts.
// Empty input decodes to no facts (the shape the pre-facts vetkit wrote,
// and what non-module packages still write).
func decodeFacts(data []byte) ([]encodedFact, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var facts []encodedFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&facts); err != nil {
		return nil, err
	}
	return facts, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Drivers must typecheck with an Info from here so that
// Uses/Defs/Types lookups never silently miss.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// A Suppression is one honored //vetkit:ignore comment: the diagnostic
// it silenced, the analyzer named, and the stated reason.
type Suppression struct {
	Pos      token.Pos
	Analyzer string
	Reason   string
	Message  string // the diagnostic message that was suppressed
}

// A Failure is one analyzer that errored or panicked; the run continued
// with the remaining analyzers.
type Failure struct {
	Analyzer string
	Err      error
}

// A Result is everything one Check produced.
type Result struct {
	Diags      []Diagnostic  // findings that survived suppression
	Suppressed []Suppression // findings silenced by //vetkit:ignore
	Facts      []byte        // serialized facts the analyzers exported
	Failures   []Failure     // analyzers that crashed; the run continued
}

// Options configures a Check beyond the package itself.
type Options struct {
	// DepFacts maps dependency import paths to the raw fact bytes their
	// own Check produced (the vetx file contents under the driver
	// protocol). Unparseable entries are an error.
	DepFacts map[string][]byte

	// KnownAnalyzers is the full suite's analyzer names, used to flag
	// //vetkit:ignore comments naming an analyzer that does not exist
	// (a typo'd suppression would otherwise silently do nothing). Empty
	// means "don't check" — subset runs pass the full list explicitly.
	KnownAnalyzers []string

	// FactsOnly runs only analyzers with FactTypes and discards
	// diagnostics; used for dependency (VetxOnly) passes where only the
	// exported facts matter.
	FactsOnly bool
}

// Check type-checks files as package path using conf and runs each
// analyzer over the result, returning diagnostics in position order,
// honored suppressions, exported facts, and per-analyzer failures. An
// analyzer that returns an error or panics is recorded as a Failure and
// the remaining analyzers still run — one crashing analyzer must not
// take down the whole vet pass. conf.Error and conf.Importer must be
// set by the caller; conf.Error collecting soft errors lets analysis
// proceed on packages that are complete enough to walk.
func Check(conf *types.Config, fset *token.FileSet, path string, files []*ast.File, analyzers []*Analyzer, opts *Options) (*Result, *types.Package, error) {
	if opts == nil {
		opts = &Options{}
	}
	info := NewInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, pkg, fmt.Errorf("typecheck %s: %w", path, err)
	}

	imported := make(map[string][]encodedFact, len(opts.DepFacts))
	for dep, raw := range opts.DepFacts {
		facts, err := decodeFacts(raw)
		if err != nil {
			return nil, pkg, fmt.Errorf("decoding facts of %s: %w", dep, err)
		}
		imported[dep] = facts
	}

	res := &Result{}
	var exported []encodedFact
	var diags []Diagnostic
	for _, a := range analyzers {
		if opts.FactsOnly && len(a.FactTypes) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			exported:  &exported,
			imported:  imported,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			d.Message = d.Message + " (" + a.Name + ")"
			diags = append(diags, d)
		}
		if err := runSafe(a, pass); err != nil {
			res.Failures = append(res.Failures, Failure{Analyzer: a.Name, Err: err})
		}
	}

	if opts.FactsOnly {
		diags = nil
	}
	sup := collectSuppressions(fset, files)
	res.Diags, res.Suppressed = sup.apply(fset, diags)
	if !opts.FactsOnly {
		res.Diags = append(res.Diags, sup.selfDiagnostics(opts.KnownAnalyzers)...)
	}
	sort.SliceStable(res.Diags, func(i, j int) bool { return res.Diags[i].Pos < res.Diags[j].Pos })

	if res.Facts, err = encodeFacts(exported); err != nil {
		return res, pkg, fmt.Errorf("encoding facts of %s: %w", path, err)
	}
	return res, pkg, nil
}

// runSafe runs one analyzer, converting a panic into an error so a
// buggy analyzer cannot abort the whole unit.
func runSafe(a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("analyzer %s panicked: %v", a.Name, r)
		}
	}()
	return a.Run(pass)
}

// ignoreRE parses a //vetkit:ignore comment. Group 1 is the analyzer
// list, group 2 (optional) the reason.
var ignoreRE = regexp.MustCompile(`^//\s*vetkit:ignore\(([^)]*)\)\s*(?::\s*(.*?))?\s*$`)

// suppressionEntry is one parsed //vetkit:ignore comment.
type suppressionEntry struct {
	pos        token.Pos
	analyzers  []string
	reason     string
	standalone bool // alone on its line: applies to the next line too
}

type suppressionSet struct {
	// byLine maps "file:line" to the entries that may suppress a
	// diagnostic on that line.
	byLine  map[string][]*suppressionEntry
	entries []*suppressionEntry
}

// collectSuppressions parses every //vetkit:ignore comment in files.
// A trailing comment covers its own line; a comment alone on a line
// covers the next line as well.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{byLine: make(map[string][]*suppressionEntry)}
	for _, f := range files {
		codeLines := codeLineSet(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				pos := fset.Position(c.Pos())
				e := &suppressionEntry{
					pos:        c.Pos(),
					analyzers:  names,
					reason:     strings.TrimSpace(m[2]),
					standalone: !codeLines[pos.Line],
				}
				set.entries = append(set.entries, e)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				set.byLine[key] = append(set.byLine[key], e)
				if e.standalone {
					next := fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)
					set.byLine[next] = append(set.byLine[next], e)
				}
			}
		}
	}
	return set
}

// codeLineSet returns the set of lines in f that contain any non-comment
// token, so a comment can be classified trailing vs standalone.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

// apply splits diags into surviving diagnostics and honored
// suppressions.
func (s *suppressionSet) apply(fset *token.FileSet, diags []Diagnostic) ([]Diagnostic, []Suppression) {
	var keep []Diagnostic
	var suppressed []Suppression
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		var hit *suppressionEntry
		for _, e := range s.byLine[key] {
			if e.reason == "" {
				continue // an unreasoned ignore suppresses nothing
			}
			for _, name := range e.analyzers {
				if name == d.Analyzer {
					hit = e
					break
				}
			}
			if hit != nil {
				break
			}
		}
		if hit == nil {
			keep = append(keep, d)
			continue
		}
		suppressed = append(suppressed, Suppression{
			Pos:      d.Pos,
			Analyzer: d.Analyzer,
			Reason:   hit.reason,
			Message:  d.Message,
		})
	}
	return keep, suppressed
}

// selfDiagnostics reports malformed suppressions: an empty reason, or a
// named analyzer that does not exist in the known suite.
func (s *suppressionSet) selfDiagnostics(known []string) []Diagnostic {
	knownSet := make(map[string]bool, len(known))
	for _, k := range known {
		knownSet[k] = true
	}
	var diags []Diagnostic
	for _, e := range s.entries {
		if e.reason == "" {
			diags = append(diags, Diagnostic{
				Pos:      e.pos,
				Analyzer: "vetkit",
				Message:  fmt.Sprintf("vetkit:ignore(%s) has no reason; a suppression must say why (vetkit)", strings.Join(e.analyzers, ",")),
			})
		}
		if len(knownSet) > 0 {
			for _, name := range e.analyzers {
				if !knownSet[name] {
					diags = append(diags, Diagnostic{
						Pos:      e.pos,
						Analyzer: "vetkit",
						Message:  fmt.Sprintf("vetkit:ignore names unknown analyzer %q (vetkit)", name),
					})
				}
			}
		}
	}
	return diags
}

// IsErrorType reports whether t is the built-in error interface or a
// named type implementing it. Shared by errsentinel and fixtures.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsContextType reports whether t is context.Context. Shared by
// ctxplumb, goroutinejoin, and deadlineprop.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}
