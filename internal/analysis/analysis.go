// Package analysis is a self-contained, standard-library-only analogue
// of golang.org/x/tools/go/analysis, sized for this repository's needs.
// It exists because the verify gate must run in offline containers where
// x/tools cannot be downloaded; the API mirrors the upstream shape
// (Analyzer, Pass, Diagnostic) so the project-specific analyzers under
// internal/analysis/... can be ported to the real framework mechanically
// if a vendored x/tools ever becomes available.
//
// The analyzers themselves encode this repository's pipeline invariants —
// the contracts established by PR 1 (shared DP kernels, bit-exactness)
// and PR 2 (atomic durable writes, context plumbing, typed error
// sentinels, pre-filled-and-closed worker channels). See DESIGN.md §10
// for the catalogue and cmd/vetkit for the driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check: a name, what invariant it
// enforces, and a Run function applied once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command-line flags.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by `vetkit -help`,
	// stating the invariant the analyzer enforces and which patterns are
	// deliberately exempt.
	Doc string

	// Run applies the check to a single package. Diagnostics are
	// delivered through pass.Report / pass.Reportf; the error return is
	// reserved for analyzer-internal failures, not findings.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills this in.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	pass.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Most
// invariants are production-code contracts: tests legitimately write
// scratch files directly, compare floats bit-exactly in differential
// tests, and spawn bare goroutines.
func (pass *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Drivers must typecheck with an Info from here so that
// Uses/Defs/Types lookups never silently miss.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check type-checks files as package path using conf and runs each
// analyzer over the result, returning all diagnostics in file/position
// order of discovery. conf.Error and conf.Importer must be set by the
// caller; conf.Error collecting soft errors lets analysis proceed on
// packages that are complete enough to walk.
func Check(conf *types.Config, fset *token.FileSet, path string, files []*ast.File, analyzers []*Analyzer) ([]Diagnostic, *types.Package, error) {
	info := NewInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, pkg, fmt.Errorf("typecheck %s: %w", path, err)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Message = d.Message + " (" + a.Name + ")"
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return diags, pkg, fmt.Errorf("analyzer %s on %s: %w", a.Name, path, err)
		}
	}
	return diags, pkg, nil
}

// IsErrorType reports whether t is the built-in error interface or a
// named type implementing it. Shared by errsentinel and fixtures.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
