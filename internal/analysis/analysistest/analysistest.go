// Package analysistest runs an analyzer over source fixtures and checks
// its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only (offline containers cannot fetch x/tools).
//
// Layout: each fixture package lives under testdata/src/<pkgpath>/
// relative to the analyzer's package directory. Every .go file in the
// directory is parsed into one package and type-checked with the
// stdlib source importer, so fixtures may import the standard library
// freely. A file whose name ends in _test.go exercises the analyzers'
// test-file exemptions: it is an ordinary fixture file here (the go
// tool never builds testdata), but analyzers that exempt tests must
// stay silent on it.
//
// Expectations are trailing line comments:
//
//	os.WriteFile(p, b, 0o644) // want `atomicio`
//	x := a == b               // want "errors.Is" "second finding"
//
// Each quoted or backquoted string is an unanchored regexp that must
// match exactly one diagnostic reported on that line; unexpected and
// missing diagnostics both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"partitionshare/internal/analysis"
)

// wantRE extracts the expectation strings from a // want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package under testdata/src and applies a to
// it, comparing diagnostics against the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		runPackage(t, a, pkgpath)
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgpath))
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	conf := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		// Collect soft errors so analyzers still run on fixtures that
		// are deliberately incomplete.
		Error: func(error) {},
	}
	// KnownAnalyzers carries just the analyzer under test: a fixture may
	// demonstrate //vetkit:ignore for it, and any other name in an ignore
	// is flagged as unknown (which a fixture can also // want).
	res, _, err := analysis.Check(conf, fset, pkgpath, files, []*analysis.Analyzer{a},
		&analysis.Options{KnownAnalyzers: []string{a.Name}})
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}
	for _, f := range res.Failures {
		t.Fatalf("%s: analyzer failure: %v", pkgpath, f.Err)
	}

	wants := collectWants(t, fset, files)

	for _, d := range res.Diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !consume(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return files, nil
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, tok := range wantRE.FindAllString(text, -1) {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// consume marks the first unmatched expectation matching msg.
func consume(ws []*expectation, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
