module partitionshare

go 1.22
