// Scheduler: the co-run scheduling workflow the paper motivates in §IV —
// "for a scheduling problem with 20 programs ... we would like to predict
// cache performance based on 20 metrics, not 20-choose-2".
//
// Twelve synthetic programs are profiled once (12 profiles), then:
//
//  1. the grouping optimizer assigns them to 3 shared caches from solo
//     profiles alone (no co-run measurement of any pair), and
//  2. within each cache, the incremental DP scores candidate partitions
//     push/pop style and the optimal partition is installed.
package main

import (
	"fmt"

	ps "partitionshare"
)

func main() {
	const (
		cacheBlocks   = 2048
		units         = 64
		blocksPerUnit = cacheBlocks / units
		n             = 1 << 18
		caches        = 3
	)

	// A zoo of twelve programs: streamers, loopers of assorted sizes, and
	// zipf-skewed random access.
	specs := []struct {
		name string
		gen  ps.Generator
		rate float64
	}{
		{"stream-a", ps.NewStreaming(2), 2.4},
		{"stream-b", ps.NewStreaming(4), 2.0},
		{"loop-s", ps.NewLoop(400, 1), 1.0},
		{"loop-m", ps.NewLoop(900, 1), 1.1},
		{"loop-l", ps.NewLoop(1600, 1), 1.2},
		{"saw-s", ps.NewSawtooth(500), 0.9},
		{"saw-l", ps.NewSawtooth(1800), 1.3},
		{"zipf-hot", ps.NewZipf(600, 1.2, 1), 1.8},
		{"zipf-mid", ps.NewZipf(1500, 0.9, 2), 1.4},
		{"zipf-cold", ps.NewZipf(3000, 0.6, 3), 1.0},
		{"tiny", ps.NewSawtooth(60), 0.6},
		{"mixed", ps.NewDeterministicMix(
			[]ps.Generator{ps.NewLoop(700, 1), ps.Region{Gen: ps.NewStreaming(16), Base: 1 << 24}},
			[]float64{0.8, 0.2}), 1.5},
	}

	fmt.Printf("profiling %d programs once each (%d accesses)...\n", len(specs), n)
	progs := make([]ps.Program, len(specs))
	for i, s := range specs {
		progs[i] = ps.Program{Name: s.name, Fp: ps.ProfileTrace(ps.Generate(s.gen, n)), Rate: s.rate}
	}

	// Step 1: assign programs to caches from the 12 solo profiles.
	grouping, err := ps.GreedyGrouping(progs, caches, cacheBlocks, 50)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbest grouping found (predicted overall miss ratio %.4f):\n", grouping.MissRatio)
	for c, members := range grouping.Caches {
		fmt.Printf("  cache %d:", c)
		for _, p := range members {
			fmt.Printf(" %s", progs[p].Name)
		}
		fmt.Println()
	}

	// Step 2: partition each cache optimally; the incremental DP lets a
	// scheduler re-score as membership churns.
	fmt.Println("\nper-cache optimal partitions:")
	for c, members := range grouping.Caches {
		if len(members) == 0 {
			continue
		}
		inc := ps.NewIncremental(units)
		var curves []ps.Curve
		for _, p := range members {
			curve := ps.CurveFromFootprint(progs[p].Name, progs[p].Fp, units, int64(blocksPerUnit), progs[p].Rate)
			curve.Accesses = int64(float64(curve.Accesses) * progs[p].Rate)
			curves = append(curves, curve)
			if err := inc.Push(curve); err != nil {
				panic(err)
			}
		}
		sol, err := inc.Solve()
		if err != nil {
			panic(err)
		}
		fmt.Printf("  cache %d: group mr %.4f  [", c, sol.GroupMissRatio)
		for i, p := range members {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%d", progs[p].Name, sol.Alloc[i])
		}
		fmt.Println("]")

		// What if the scheduler considers evicting the last program?
		if len(members) > 1 {
			if err := inc.Pop(); err != nil {
				panic(err)
			}
			reduced, err := inc.Solve()
			if err != nil {
				panic(err)
			}
			fmt.Printf("           without %s: group mr %.4f\n",
				progs[members[len(members)-1]].Name, reduced.GroupMissRatio)
		}
	}
}
