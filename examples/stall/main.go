// Stall scheduling: the paper's §IV motivating scenario, verbatim — "if
// two programs are traversing different 60MB arrays while sharing a 64MB
// cache, stalling one of them will prevent thrashing, and they may both
// finish sooner this way."
//
// Two programs each sweep an array of ~60% of the cache. Run together,
// neither array fits its natural half and both thrash. Alternating
// exclusive turns (stalling one program at a time) lets each turn run at
// full cache and hit — total work finishes with far fewer misses. The
// composition model predicts this from solo profiles before any co-run.
package main

import (
	"fmt"

	ps "partitionshare"
)

func main() {
	const (
		cache  = 1024 // blocks ("64MB")
		arrayA = 600  // ~60% of cache each
		arrayB = 620
		n      = 1 << 18 // accesses per program
	)

	ta := ps.Generate(ps.NewLoop(arrayA, 1), n)
	tb := ps.Generate(ps.NewLoop(arrayB, 1), n)

	// Prediction from solo profiles: under sharing each occupies about
	// half the cache — far below its array — so both should miss ~always.
	progs := []ps.Program{
		{Name: "A", Fp: ps.ProfileTrace(ta), Rate: 1},
		{Name: "B", Fp: ps.ProfileTrace(tb), Rate: 1},
	}
	occ := ps.NaturalPartition(progs, cache)
	pred := ps.SharedMissRatios(progs, cache)
	fmt.Printf("prediction: A occupies %.0f blocks (mr %.3f), B %.0f (mr %.3f)\n",
		occ[0], pred[0], occ[1], pred[1])

	// Measured: free-for-all sharing.
	iv := ps.InterleaveProportional([]ps.Trace{ta, tb}, []float64{1, 1}, 2*n)
	shared := ps.SimulateShared(iv, cache, n/4)
	sharedMisses := shared.Misses[0] + shared.Misses[1]
	fmt.Printf("shared (no stalls): %d misses over %d accesses (mr %.3f)\n",
		sharedMisses, 2*n, shared.GroupMissRatio())

	// Stall schedule: the programs alternate exclusive slices of the
	// cache. Each slice re-warms (one sweep of cold misses) and then hits
	// until its turn ends.
	slice := n / 8 // accesses per exclusive turn
	cacheLRU := ps.NewLRU(cache)
	var stallMisses int64
	posA, posB := 0, 0
	for posA < len(ta) || posB < len(tb) {
		for turn, pos, tr := 0, &posA, &ta; turn < 2; turn++ {
			if turn == 1 {
				pos, tr = &posB, &tb
			}
			end := *pos + slice
			if end > len(*tr) {
				end = len(*tr)
			}
			for _, d := range (*tr)[*pos:end] {
				// Programs own disjoint blocks: offset B's IDs.
				if turn == 1 {
					d += 1 << 24
				}
				if hit, _, _ := cacheLRU.Access(d); !hit {
					stallMisses++
				}
			}
			*pos = end
		}
	}
	fmt.Printf("alternating stalls:  %d misses over %d accesses (mr %.3f)\n",
		stallMisses, 2*n, float64(stallMisses)/float64(2*n))

	if stallMisses < sharedMisses/2 {
		fmt.Printf("\n-> stalling cut misses by %.1fx: both programs finish sooner,\n",
			float64(sharedMisses)/float64(stallMisses))
		fmt.Println("   exactly the §IV scheduling opportunity the composition theory")
		fmt.Println("   exposes without ever co-running the pair.")
	} else {
		fmt.Println("\n-> no win at this configuration.")
	}
}
