// Fair cache sharing: the paper's §VI baseline optimization and the
// throughput/fairness trade-off, on a 4-program group drawn from the
// synthetic SPEC-like suite.
//
// The demo prints six allocations for the same group:
//
//	Equal            — the socialist baseline (2 MB each in the paper)
//	Natural          — free-for-all sharing (the capitalist baseline)
//	Equal baseline   — best group performance with nobody worse than Equal
//	Natural baseline — best group performance with nobody worse than Natural
//	Optimal          — unconstrained optimum (can be unfair)
//	Minimax          — the fairest possible: minimize the worst miss count
package main

import (
	"fmt"

	ps "partitionshare"
)

func main() {
	cfg := ps.SmallWorkloadConfig()
	specs := ps.SPECLikeSuite()

	// Pick a contended group: a streamer, two mid programs, one light.
	pick := map[string]bool{"lbm": true, "omnetpp": true, "perlbench": true, "hmmer": true}
	var chosen []ps.WorkloadSpec
	for _, s := range specs {
		if pick[s.Name] {
			chosen = append(chosen, s)
		}
	}
	progs, err := ps.ProfileSuite(nil, chosen, cfg)
	if err != nil {
		panic(err)
	}

	curves := make([]ps.Curve, len(progs))
	comps := make([]ps.Program, len(progs))
	for i, p := range progs {
		curves[i] = p.Curve
		comps[i] = ps.Program{Name: p.Name, Fp: p.Fp, Rate: p.Rate}
	}
	pr := ps.Problem{Curves: curves, Units: cfg.Units}

	show := func(label string, sol ps.Solution) {
		fmt.Printf("%-17s group mr %.5f   ", label, sol.GroupMissRatio)
		for i, c := range curves {
			fmt.Printf("%s=%d(%.5f) ", c.Name, sol.Alloc[i], sol.MissRatios[i])
		}
		fmt.Println()
	}

	equal := ps.EqualAllocation(len(curves), cfg.Units)
	sol, err := ps.Evaluate(pr, equal)
	if err != nil {
		panic(err)
	}
	show("Equal", sol)

	natural := ps.Allocation(ps.NaturalPartitionUnits(comps, cfg.Units, cfg.BlocksPerUnit))
	sol, err = ps.Evaluate(pr, natural)
	if err != nil {
		panic(err)
	}
	show("Natural", sol)

	eqBase, err := ps.OptimizeWithBaseline(curves, cfg.Units, equal)
	if err != nil {
		panic(err)
	}
	show("Equal baseline", eqBase)

	sol, err = ps.OptimizeWithBaseline(curves, cfg.Units, natural)
	if err != nil {
		panic(err)
	}
	show("Natural baseline", sol)

	opt, err := ps.Optimize(pr)
	if err != nil {
		panic(err)
	}
	show("Optimal", opt)

	fair, err := ps.Optimize(ps.Problem{Curves: curves, Units: cfg.Units, Combine: ps.Minimax})
	if err != nil {
		panic(err)
	}
	show("Minimax", fair)

	fmt.Println("\nTrade-off: Optimal minimizes the group miss ratio but may push a")
	fmt.Println("program above its baseline; the baseline rows give up part of the")
	fmt.Println("group win to guarantee nobody loses; Minimax maximizes the floor.")
	fmt.Printf("price of equal-baseline fairness: +%.2f%% group miss ratio\n",
		100*(priceOf(eqBase.GroupMissRatio, opt.GroupMissRatio)))
}

func priceOf(fair, opt float64) float64 {
	if opt == 0 {
		return 0
	}
	return fair/opt - 1
}
