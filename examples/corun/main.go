// Co-run prediction vs. simulation: the §VII-C validation in miniature.
//
// Two programs share an LRU cache. The HOTL composition predicts each
// program's occupancy and miss ratio from solo profiles only (never
// co-running them); a shared-cache LRU simulation then measures the truth.
// The natural partition assumption holds when the two agree.
package main

import (
	"fmt"

	ps "partitionshare"
)

func main() {
	const (
		capacity = 2048
		traceLen = 1 << 19
	)

	// A random-access program with a large pool vs one with a small pool:
	// under sharing the large program naturally occupies more.
	big := ps.Generate(ps.NewZipf(6000, 0.4, 7), traceLen)
	small := ps.Generate(ps.NewZipf(1200, 0.4, 9), traceLen)

	progs := []ps.Program{
		{Name: "big", Fp: ps.ProfileTrace(big), Rate: 1.0},
		{Name: "small", Fp: ps.ProfileTrace(small), Rate: 1.0},
	}

	// Prediction from solo profiles (paper Eq. 9–11, Fig. 4).
	occ := ps.NaturalPartition(progs, capacity)
	pred := ps.SharedMissRatios(progs, capacity)

	// Ground truth: interleave and simulate the shared cache.
	iv := ps.InterleaveProportional([]ps.Trace{big, small}, []float64{1, 1}, 2*traceLen)
	sim := ps.SimulateShared(iv, capacity, traceLen/2)

	fmt.Printf("%-8s %14s %14s %12s %12s\n", "program", "occ(pred)", "occ(sim)", "mr(pred)", "mr(sim)")
	for p, prog := range progs {
		fmt.Printf("%-8s %14.1f %14.1f %12.4f %12.4f\n",
			prog.Name, occ[p], sim.MeanOccupancy[p], pred[p], sim.MissRatio(p))
	}
	fmt.Printf("\ngroup miss ratio: predicted %.4f, simulated %.4f\n",
		ps.SharedGroupMissRatio(progs, capacity), sim.GroupMissRatio())

	// The same prediction also scores every partition-sharing scheme:
	// compare strict halves against free-for-all sharing.
	halves := ps.EvaluateSharingScheme(progs,
		ps.SharingScheme{Groups: [][]int{{0}, {1}}, Units: []int{32, 32}}, capacity/64)
	shared := ps.EvaluateSharingScheme(progs,
		ps.SharingScheme{Groups: [][]int{{0, 1}}, Units: []int{64}}, capacity/64)
	fmt.Printf("\nequal halves: group mr %.4f   free-for-all: group mr %.4f\n",
		halves.GroupMissRatio, shared.GroupMissRatio)
}
