// Quickstart: profile two synthetic programs, predict their shared-cache
// behaviour, and compute the optimal cache partition — the library's whole
// pipeline in ~60 lines.
package main

import (
	"fmt"

	ps "partitionshare"
)

func main() {
	const (
		cacheBlocks   = 4096 // total cache, in 64B-block equivalents
		units         = 64   // partition units
		blocksPerUnit = cacheBlocks / units
		traceLen      = 1 << 20
	)

	// Program A loops over 3000 blocks — a working-set cliff just under
	// the cache size. Program B streams with a hot core.
	a := ps.Generate(ps.NewDeterministicMix(
		[]ps.Generator{ps.NewLoop(3000, 1), ps.NewSawtooth(200)},
		[]float64{0.05, 0.95}), traceLen)
	b := ps.Generate(ps.NewDeterministicMix(
		[]ps.Generator{ps.NewStreaming(8), ps.Region{Gen: ps.NewSawtooth(400), Base: 1 << 24}},
		[]float64{0.30, 0.70}), traceLen)

	// 1. Profile: one pass per trace gives the full HOTL footprint.
	fpA, fpB := ps.ProfileTrace(a), ps.ProfileTrace(b)
	fmt.Printf("A: %d accesses, %d distinct blocks, solo mr at half-cache %.4f\n",
		fpA.N(), fpA.M(), fpA.MissRatio(cacheBlocks/2))
	fmt.Printf("B: %d accesses, %d distinct blocks, solo mr at half-cache %.4f\n",
		fpB.N(), fpB.M(), fpB.MissRatio(cacheBlocks/2))

	// 2. Compose: predict the shared cache (free-for-all) without ever
	// running the programs together.
	group := []ps.Program{
		{Name: "A", Fp: fpA, Rate: 1.0},
		{Name: "B", Fp: fpB, Rate: 1.0},
	}
	occ := ps.NaturalPartition(group, cacheBlocks)
	mrs := ps.SharedMissRatios(group, cacheBlocks)
	fmt.Printf("\nshared cache (natural partition): A occupies %.0f blocks (mr %.4f), B %.0f (mr %.4f)\n",
		occ[0], mrs[0], occ[1], mrs[1])
	fmt.Printf("predicted group miss ratio under sharing: %.4f\n",
		ps.SharedGroupMissRatio(group, cacheBlocks))

	// 3. Optimize: the DP finds the best partition over all ~65 choices
	// per program — here it must give A its cliff.
	curves := []ps.Curve{
		ps.CurveFromFootprint("A", fpA, units, blocksPerUnit, 1.0),
		ps.CurveFromFootprint("B", fpB, units, blocksPerUnit, 1.0),
	}
	opt, err := ps.Optimize(ps.Problem{Curves: curves, Units: units})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\noptimal partition: A=%d units (mr %.4f), B=%d units (mr %.4f), group mr %.4f\n",
		opt.Alloc[0], opt.MissRatios[0], opt.Alloc[1], opt.MissRatios[1], opt.GroupMissRatio)

	sttw := ps.STTW(curves, units)
	fmt.Printf("STTW (convex greedy):  A=%d, B=%d, group mr %.4f\n",
		sttw.Alloc[0], sttw.Alloc[1], sttw.GroupMissRatio)
	if opt.GroupMissRatio < sttw.GroupMissRatio {
		fmt.Println("-> the DP beat the greedy: A's miss-ratio curve is not convex.")
	}
}
