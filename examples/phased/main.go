// Figure 1 of the paper: a workload where partition-sharing genuinely
// beats strict partitioning, because two programs alternate their cache
// demand in synchronized antiphase — exactly the case the natural
// partition assumption excludes (§VIII "Random Phase Interaction").
//
// Four cores share a small cache:
//
//	core 1, core 2 — streaming (no reuse, pure pollution)
//	core 3         — phases: big working set, then tiny, repeating
//	core 4         — the same phases, shifted so that 3 is big while 4 is
//	                 tiny and vice versa
//
// This demo enumerates EVERY partition-sharing scheme (every grouping of
// the 4 programs x every wall placement) and simulates each on the same
// interleaved trace — the small-scale version of the paper's §II search
// space. Strict partitioning cannot cover both phased programs' peaks at
// once; giving cores 3 and 4 a shared partition can.
package main

import (
	"fmt"
	"math"

	ps "partitionshare"
	"partitionshare/internal/sharing"
)

func main() {
	const (
		cache    = 24      // blocks
		bigWS    = 14      // phased programs' large working set
		tinyWS   = 1       // and their small one
		phaseLen = 4096    // accesses per phase
		total    = 1 << 18 // interleaved accesses
	)

	// Antiphase: core 3 starts big, core 4 starts tiny.
	mkPhased := func(bigFirst bool) ps.Generator {
		big := ps.Phase{Gen: ps.NewSawtooth(bigWS), Len: phaseLen}
		tiny := ps.Phase{Gen: ps.Region{Gen: ps.NewSawtooth(tinyWS), Base: 1 << 20}, Len: phaseLen}
		if bigFirst {
			return ps.NewPhased(big, tiny)
		}
		return ps.NewPhased(tiny, big)
	}
	perProg := total / 4
	traces := []ps.Trace{
		ps.Generate(ps.NewStreaming(1), perProg),
		ps.Generate(ps.NewStreaming(1), perProg),
		ps.Generate(mkPhased(true), perProg),
		ps.Generate(mkPhased(false), perProg),
	}
	rates := []float64{1, 1, 1, 1}
	iv := ps.InterleaveProportional(traces, rates, total)

	type best struct {
		mr     float64
		scheme sharing.Scheme
	}
	bestAny := best{mr: math.Inf(1)}
	bestPart := best{mr: math.Inf(1)}
	evaluated := 0
	for _, groups := range sharing.SetPartitions(4) {
		sharing.Compositions(cache, len(groups), func(alloc []int) {
			evaluated++
			caps := append([]int(nil), alloc...)
			res := ps.SimulatePartitionShared(iv, groups, caps)
			mr := res.GroupMissRatio()
			s := sharing.Scheme{Groups: groups, Units: caps}
			if mr < bestAny.mr {
				bestAny = best{mr, cloneScheme(s)}
			}
			if len(groups) == 4 && mr < bestPart.mr {
				bestPart = best{mr, cloneScheme(s)}
			}
		})
	}

	fmt.Printf("simulated %d partition-sharing schemes of a %d-block cache\n\n", evaluated, cache)
	fmt.Printf("best partitioning-only : %-28s group mr %.4f\n", bestPart.scheme, bestPart.mr)
	fmt.Printf("best partition-sharing : %-28s group mr %.4f\n", bestAny.scheme, bestAny.mr)
	if bestAny.mr < bestPart.mr-1e-9 {
		fmt.Printf("\n-> partition-sharing wins by %.1f%%: the phased programs' peaks\n",
			100*(bestPart.mr/bestAny.mr-1))
		fmt.Println("   never overlap, so a shared partition serves both — no strict")
		fmt.Println("   partition can. (With random phase alignment the gap vanishes,")
		fmt.Println("   which is why the paper's natural-partition reduction holds.)")
	} else {
		fmt.Println("\n-> no gap: at this configuration partitioning matches sharing.")
	}
}

func cloneScheme(s sharing.Scheme) sharing.Scheme {
	g := make([][]int, len(s.Groups))
	for i, m := range s.Groups {
		g[i] = append([]int(nil), m...)
	}
	return sharing.Scheme{Groups: g, Units: append([]int(nil), s.Units...)}
}
